/**
 * @file
 * The random-walk transfer-queue model of Section IV-C / Figure 13a:
 * with probability 1/4 the walk moves up (a block arrives without
 * service), 1/4 down (service without arrival), 1/2 it stays; the
 * paper's F(s, k) recursion describes the FREE walk on the integers,
 * and "overflow" is the event of having moved more than k steps above
 * the origin within s steps.
 *
 * A reflecting-at-zero variant (the physically-correct queue, which
 * overflows somewhat faster) is available through
 * WalkParams::reflectAtZero.
 */

#ifndef SECUREDIMM_ANALYTIC_RANDOM_WALK_HH
#define SECUREDIMM_ANALYTIC_RANDOM_WALK_HH

#include <cstdint>
#include <vector>

namespace secdimm::analytic
{

/** Step probabilities of the lazy random walk. */
struct WalkParams
{
    double pUp = 0.25;   ///< Arrival without service.
    double pDown = 0.25; ///< Service without arrival.
    // Stay probability is the remainder (0.5 in the paper's model).

    /**
     * false (default): the paper's free walk (position may go
     * negative).  true: reflect at zero (real queue occupancy).
     */
    bool reflectAtZero = false;
};

/**
 * Probability that the walk has REACHED position >= @p bound at least
 * once within @p steps steps (absorbing barrier at @p bound) -- the
 * "chance of piling up more than k blocks" curves of Figure 13a.
 */
double overflowProbability(std::uint64_t steps, unsigned bound,
                           const WalkParams &params = WalkParams{});

/**
 * Simulate the walk with pseudo-random trials (validation of the
 * dynamic-programming recursion; tests compare the two).
 */
double simulateOverflowProbability(std::uint64_t steps, unsigned bound,
                                   unsigned trials, std::uint64_t seed,
                                   const WalkParams &params =
                                       WalkParams{});

} // namespace secdimm::analytic

#endif // SECUREDIMM_ANALYTIC_RANDOM_WALK_HH
