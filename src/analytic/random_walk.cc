#include "analytic/random_walk.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"
#include "util/rng.hh"

namespace secdimm::analytic
{

double
overflowProbability(std::uint64_t steps, unsigned bound,
                    const WalkParams &params)
{
    SD_ASSERT(bound >= 1);
    const double p_stay = 1.0 - params.pUp - params.pDown;
    SD_ASSERT(p_stay >= -1e-12);

    // Positions live in [-floor, bound]; index = position + floor.
    // For the free walk the negative range is truncated at a depth a
    // path essentially cannot climb back from within the remaining
    // steps (4.5 sigma below the barrier contributes < 1e-5).
    unsigned floor_depth = 0;
    if (!params.reflectAtZero) {
        const double sigma = std::sqrt(
            (params.pUp + params.pDown) * static_cast<double>(steps));
        floor_depth = static_cast<unsigned>(4.5 * sigma) + 1;
    }
    const std::size_t size =
        static_cast<std::size_t>(floor_depth) + bound + 1;
    const std::size_t origin = floor_depth;
    const std::size_t barrier = size - 1;

    std::vector<double> dist(size, 0.0);
    std::vector<double> next(size, 0.0);
    dist[origin] = 1.0;

    // Active window: positions that can hold mass grow by one per
    // step in each direction.
    std::size_t lo = origin, hi = origin;

    for (std::uint64_t s = 0; s < steps; ++s) {
        const std::size_t new_lo = lo > 1 ? lo - 1 : 0;
        const std::size_t new_hi = std::min(hi + 1, barrier);
        std::fill(next.begin() + static_cast<std::ptrdiff_t>(new_lo),
                  next.begin() + static_cast<std::ptrdiff_t>(new_hi) + 1,
                  0.0);
        for (std::size_t k = lo; k <= hi && k < barrier; ++k) {
            const double m = dist[k];
            if (m == 0.0)
                continue;
            next[k + 1] += m * params.pUp;
            if (k == 0) {
                // Bottom edge: reflecting (queue) or truncation
                // (free walk, mass parked harmlessly at the floor).
                next[0] += m * params.pDown;
            } else {
                next[k - 1] += m * params.pDown;
            }
            next[k] += m * p_stay;
        }
        next[barrier] += dist[barrier]; // Absorbed mass stays.
        dist.swap(next);
        lo = new_lo;
        hi = new_hi;
    }
    return dist[barrier];
}

double
simulateOverflowProbability(std::uint64_t steps, unsigned bound,
                            unsigned trials, std::uint64_t seed,
                            const WalkParams &params)
{
    Rng rng(seed);
    unsigned overflows = 0;
    for (unsigned t = 0; t < trials; ++t) {
        std::int64_t k = 0;
        for (std::uint64_t s = 0; s < steps; ++s) {
            const double u = rng.nextDouble();
            if (u < params.pUp) {
                ++k;
                if (k >= static_cast<std::int64_t>(bound)) {
                    ++overflows;
                    break;
                }
            } else if (u < params.pUp + params.pDown) {
                if (k > 0 || !params.reflectAtZero)
                    --k;
            }
        }
    }
    return static_cast<double>(overflows) / trials;
}

} // namespace secdimm::analytic
