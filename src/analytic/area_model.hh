/**
 * @file
 * Area estimate of the SDIMM secure buffer (Section IV-B):
 * the Tiny ORAM controller (0.47 mm^2 at 32 nm, Fletcher et al. [4])
 * plus an 8 KB transfer buffer (< 0.42 mm^2 per CACTI 6.5), for a
 * total under 1 mm^2.  Constants stand in for the CACTI runs (see
 * DESIGN.md substitutions).
 */

#ifndef SECUREDIMM_ANALYTIC_AREA_MODEL_HH
#define SECUREDIMM_ANALYTIC_AREA_MODEL_HH

#include <cstdint>

namespace secdimm::analytic
{

/** Component areas in mm^2 at 32 nm. */
struct SecureBufferArea
{
    double oramControllerMm2 = 0.47; ///< Fletcher et al. [4].
    double bufferMm2 = 0.0;          ///< SRAM transfer buffer.

    double totalMm2() const { return oramControllerMm2 + bufferMm2; }
};

/**
 * CACTI-derived SRAM area scaling: ~0.42 mm^2 for 8 KB at 32 nm,
 * scaled linearly in capacity with a fixed overhead floor.
 */
double sramAreaMm2(std::uint64_t bytes);

/** Full secure-buffer estimate for a given transfer-buffer size. */
SecureBufferArea secureBufferArea(std::uint64_t buffer_bytes = 8192);

} // namespace secdimm::analytic

#endif // SECUREDIMM_ANALYTIC_AREA_MODEL_HH
