#include "analytic/mm1k.hh"

#include <cmath>

#include "util/logging.hh"

namespace secdimm::analytic
{

double
mm1kUtilization(double drain_prob, double arrival_rate)
{
    SD_ASSERT(arrival_rate > 0.0);
    return arrival_rate / (arrival_rate + drain_prob);
}

double
mm1kBlockingProbability(double rho, unsigned k_slots)
{
    SD_ASSERT(k_slots >= 1);
    if (rho == 1.0)
        return 1.0 / (k_slots + 1);
    const double rho_k = std::pow(rho, static_cast<double>(k_slots));
    return rho_k * (1.0 - rho) / (1.0 - rho_k * rho);
}

double
transferQueueOverflow(double drain_prob, unsigned k_slots)
{
    return mm1kBlockingProbability(mm1kUtilization(drain_prob),
                                   k_slots);
}

std::vector<double>
mm1kOccupancy(double rho, unsigned k_slots)
{
    std::vector<double> pi(k_slots + 1);
    if (rho == 1.0) {
        const double uniform = 1.0 / (k_slots + 1);
        for (auto &p : pi)
            p = uniform;
        return pi;
    }
    const double norm =
        (1.0 - rho) /
        (1.0 - std::pow(rho, static_cast<double>(k_slots) + 1.0));
    double cur = norm;
    for (unsigned n = 0; n <= k_slots; ++n) {
        pi[n] = cur;
        cur *= rho;
    }
    return pi;
}

double
mm1kMeanOccupancy(double rho, unsigned k_slots)
{
    const auto pi = mm1kOccupancy(rho, k_slots);
    double mean = 0.0;
    for (unsigned n = 0; n <= k_slots; ++n)
        mean += n * pi[n];
    return mean;
}

} // namespace secdimm::analytic
