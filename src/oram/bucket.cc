#include "oram/bucket.hh"

#include <cstring>

#include "util/logging.hh"

namespace secdimm::oram
{

int
Bucket::firstFreeSlot() const
{
    for (unsigned i = 0; i < slots_.size(); ++i) {
        if (!slots_[i].valid())
            return static_cast<int>(i);
    }
    return -1;
}

unsigned
Bucket::occupancy() const
{
    unsigned n = 0;
    for (const auto &s : slots_)
        n += s.valid();
    return n;
}

void
Bucket::clear()
{
    for (auto &s : slots_)
        s = BlockSlot{};
}

std::size_t
Bucket::metadataBytes(unsigned z)
{
    return static_cast<std::size_t>(z) * 16;
}

std::size_t
Bucket::imageBytes(unsigned z)
{
    return metadataBytes(z) + static_cast<std::size_t>(z) * blockBytes;
}

std::vector<std::uint8_t>
Bucket::toImage() const
{
    std::vector<std::uint8_t> image(imageBytes(z()));
    toImageInto(image.data());
    return image;
}

void
Bucket::toImageInto(std::uint8_t *out) const
{
    const unsigned z = this->z();
    std::uint8_t *meta = out;
    std::uint8_t *data = out + metadataBytes(z);
    for (unsigned i = 0; i < z; ++i) {
        std::memcpy(meta + 16 * i, &slots_[i].addr, 8);
        std::memcpy(meta + 16 * i + 8, &slots_[i].leaf, 8);
        std::memcpy(data + blockBytes * i, slots_[i].data.data(),
                    blockBytes);
    }
}

Bucket
Bucket::fromImage(const std::vector<std::uint8_t> &image, unsigned z)
{
    return fromImage(image.data(), image.size(), z);
}

Bucket
Bucket::fromImage(const std::uint8_t *image, std::size_t len, unsigned z)
{
    SD_ASSERT(len == imageBytes(z));
    Bucket b(z);
    const std::uint8_t *meta = image;
    const std::uint8_t *data = image + metadataBytes(z);
    for (unsigned i = 0; i < z; ++i) {
        std::memcpy(&b.slots_[i].addr, meta + 16 * i, 8);
        std::memcpy(&b.slots_[i].leaf, meta + 16 * i + 8, 8);
        std::memcpy(b.slots_[i].data.data(), data + blockBytes * i,
                    blockBytes);
    }
    return b;
}

} // namespace secdimm::oram
