#include "oram/tree_layout.hh"

#include "util/logging.hh"

namespace secdimm::oram
{

TreeLayout::TreeLayout(unsigned tree_levels, unsigned lines_per_bucket,
                       unsigned subtree_levels)
    : treeLevels_(tree_levels),
      linesPerBucket_(lines_per_bucket),
      subtreeLevels_(subtree_levels)
{
    SD_ASSERT(subtree_levels >= 1);
    SD_ASSERT(lines_per_bucket >= 1);
    totalBuckets_ = (std::uint64_t{1} << (tree_levels + 1)) - 1;

    const unsigned total_levels = tree_levels + 1;
    std::uint64_t base = 0;
    for (unsigned first = 0; first < total_levels;
         first += subtreeLevels_) {
        const unsigned height =
            std::min(subtreeLevels_, total_levels - first);
        const std::uint64_t size = (std::uint64_t{1} << height) - 1;
        superBase_.push_back(base);
        superSize_.push_back(size);
        const std::uint64_t roots = std::uint64_t{1} << first;
        base += roots * size;
    }
    SD_ASSERT(base == totalBuckets_);
}

std::uint64_t
TreeLayout::bucketSeq(const BucketPos &b) const
{
    SD_ASSERT(b.level <= treeLevels_);
    SD_ASSERT(b.index < (std::uint64_t{1} << b.level));
    const unsigned super = b.level / subtreeLevels_;
    const unsigned depth = b.level - super * subtreeLevels_;
    const std::uint64_t root = b.index >> depth;
    const std::uint64_t local_in_level =
        b.index & ((std::uint64_t{1} << depth) - 1);
    const std::uint64_t local =
        ((std::uint64_t{1} << depth) - 1) + local_in_level;
    return superBase_[super] + root * superSize_[super] + local;
}

void
TreeLayout::pathLines(LeafId leaf, unsigned first_level,
                      std::vector<Addr> &out) const
{
    for (unsigned level = first_level; level <= treeLevels_; ++level) {
        const Addr base =
            bucketLineAddr(pathBucket(leaf, level, treeLevels_));
        for (unsigned line = 0; line < linesPerBucket_; ++line)
            out.push_back(base + line);
    }
}

void
TreeLayout::pathLinesPhased(LeafId leaf, unsigned first_level,
                            unsigned meta_lines, std::vector<Addr> &meta,
                            std::vector<Addr> &data) const
{
    SD_ASSERT(meta_lines <= linesPerBucket_);
    const unsigned data_lines = linesPerBucket_ - meta_lines;
    for (unsigned level = first_level; level <= treeLevels_; ++level) {
        const Addr base =
            bucketLineAddr(pathBucket(leaf, level, treeLevels_));
        for (unsigned line = 0; line < data_lines; ++line)
            data.push_back(base + line);
        for (unsigned line = data_lines; line < linesPerBucket_; ++line)
            meta.push_back(base + line);
    }
}

} // namespace secdimm::oram
