/**
 * @file
 * Functional Path ORAM bucket: Z block slots, each carrying the
 * block's physical address tag and current leaf, plus a per-bucket
 * freshness counter.  Buckets serialize to a byte image that is
 * AES-CTR encrypted and PMMAC-authenticated in the BucketStore.
 */

#ifndef SECUREDIMM_ORAM_BUCKET_HH
#define SECUREDIMM_ORAM_BUCKET_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace secdimm::oram
{

/** One block slot inside a bucket. */
struct BlockSlot
{
    Addr addr = invalidAddr; ///< invalidAddr marks a dummy slot.
    LeafId leaf = invalidLeaf;
    BlockData data{};

    bool valid() const { return addr != invalidAddr; }
};

/** Plaintext view of one bucket. */
class Bucket
{
  public:
    explicit Bucket(unsigned z) : slots_(z) {}

    unsigned z() const { return static_cast<unsigned>(slots_.size()); }
    BlockSlot &slot(unsigned i) { return slots_.at(i); }
    const BlockSlot &slot(unsigned i) const { return slots_.at(i); }

    /** Index of the first empty slot, or -1 if full. */
    int firstFreeSlot() const;

    /** Number of valid blocks. */
    unsigned occupancy() const;

    /** Clear every slot to dummy. */
    void clear();

    /**
     * Byte image size: Z * (8B tag + 8B leaf) metadata followed by
     * Z * 64B data.
     */
    static std::size_t imageBytes(unsigned z);

    /** Metadata-only prefix length of the image. */
    static std::size_t metadataBytes(unsigned z);

    /** Serialize to the canonical image. */
    std::vector<std::uint8_t> toImage() const;

    /** Serialize into caller-owned memory of imageBytes(z()) bytes. */
    void toImageInto(std::uint8_t *out) const;

    /** Rebuild from an image produced by toImage(). */
    static Bucket fromImage(const std::vector<std::uint8_t> &image,
                            unsigned z);

    /** Same, from caller-owned memory (e.g. a batch arena slot). */
    static Bucket fromImage(const std::uint8_t *image, std::size_t len,
                            unsigned z);

  private:
    std::vector<BlockSlot> slots_;
};

} // namespace secdimm::oram

#endif // SECUREDIMM_ORAM_BUCKET_HH
