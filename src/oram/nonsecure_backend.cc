#include "oram/nonsecure_backend.hh"

namespace secdimm::oram
{

NonSecureBackend::NonSecureBackend(const dram::TimingParams &timing,
                                   const dram::Geometry &geom,
                                   dram::MapPolicy map_policy)
    : sys_("nonsecure", timing, geom, map_policy)
{
    sys_.setCompletionCallback([this](const dram::DramCompletion &c) {
        if (onComplete_)
            onComplete_(c.id, c.doneAt);
    });
}

void
NonSecureBackend::setCompletionCallback(CompletionFn fn)
{
    onComplete_ = std::move(fn);
}

bool
NonSecureBackend::canAccept() const
{
    // Conservative: require room in every channel (the target channel
    // depends on the address the caller has not shown us yet).
    for (unsigned c = 0; c < sys_.channelCount(); ++c) {
        if (!sys_.channel(c).canEnqueue(false) ||
            !sys_.channel(c).canEnqueue(true)) {
            return false;
        }
    }
    return true;
}

void
NonSecureBackend::access(std::uint64_t id, Addr byte_addr, bool write,
                         Tick now)
{
    const Addr block = (byte_addr / blockBytes) % sys_.blockCount();
    sys_.enqueue(id, block, write, now);
}

Tick
NonSecureBackend::nextEventAt() const
{
    return sys_.nextEventAt();
}

void
NonSecureBackend::advanceTo(Tick now)
{
    sys_.advanceTo(now);
}

bool
NonSecureBackend::idle() const
{
    return sys_.idle();
}

} // namespace secdimm::oram
