/**
 * @file
 * Freecursive recursion engine: decides how many accessORAM
 * operations one LLC miss costs, by walking the PosMap hierarchy
 * through the PLB (Fletcher et al. [4], Section II-D).
 *
 * To find data block b, the controller needs its leaf from PosMap
 * block b>>g (an ORAM_1 block), whose leaf comes from b>>2g (ORAM_2),
 * and so on (g = log2 leaves per PosMap block).  The walk stops at the
 * first PosMap block the PLB holds; a full miss falls back to the
 * on-chip PosMap of ORAM_n.  Accessing ORAM_i brings the walked
 * PosMap blocks into the PLB.
 */

#ifndef SECUREDIMM_ORAM_RECURSION_HH
#define SECUREDIMM_ORAM_RECURSION_HH

#include <cstdint>

#include "oram/oram_params.hh"
#include "oram/plb.hh"

namespace secdimm::oram
{

/** Recursion statistics. */
struct RecursionStats
{
    std::uint64_t requests = 0;
    std::uint64_t orams = 0; ///< Total accessORAM ops generated.

    double
    avgOramsPerRequest() const
    {
        return requests ? static_cast<double>(orams) / requests : 0.0;
    }
};

/** PLB-based recursion depth calculator. */
class RecursionEngine
{
  public:
    explicit RecursionEngine(const RecursionParams &params);

    /**
     * Number of accessORAM operations needed to serve data block
     * @p block_index, updating the PLB with the walked PosMap blocks.
     * Always >= 1 (the data access itself).
     */
    unsigned opsForAccess(std::uint64_t block_index);

    const RecursionStats &stats() const { return stats_; }
    const Plb &plb() const { return plb_; }
    const RecursionParams &params() const { return params_; }

    /** Export request/op counters + PLB stats under @p prefix. */
    void
    exportMetrics(util::MetricsRegistry &m,
                  const std::string &prefix) const
    {
        m.setCounter(prefix + ".requests", stats_.requests);
        m.setCounter(prefix + ".orams", stats_.orams);
        m.setGauge(prefix + ".orams_per_request",
                   stats_.avgOramsPerRequest());
        plb_.exportMetrics(m, prefix + ".plb");
    }

  private:
    RecursionParams params_;
    Plb plb_;
    RecursionStats stats_;
};

} // namespace secdimm::oram

#endif // SECUREDIMM_ORAM_RECURSION_HH
