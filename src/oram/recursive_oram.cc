#include "oram/recursive_oram.hh"

#include <cstring>

#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace secdimm::oram
{

RecursiveOram::RecursiveOram(const Params &params, std::uint64_t seed)
    : params_(params),
      leavesPerBlockLog2_(params.leavesPerBlockLog2),
      rng_(seed)
{
    SD_ASSERT((std::size_t{1} << leavesPerBlockLog2_) * 8 <=
              blockBytes);
    SD_ASSERT(params_.plbEntries >= 1);

    // Build the tree chain: ORAM_0 is the data tree; each ORAM_{i+1}
    // stores the leaves of ORAM_i's blocks, 2^g per block.
    std::vector<std::uint64_t> sizes;
    sizes.push_back(params_.data.capacityBlocks());
    trees_.push_back(std::make_unique<PathOram>(
        params_.data, crypto::makeKey(0x9000, seed),
        crypto::makeKey(0x9001, seed), seed * 31 + 1,
        /*store_salt=*/1000));

    while (sizes.back() > params_.onChipMaxEntries) {
        const std::uint64_t next =
            divCeil(sizes.back(), leavesPerBlock());
        OramParams p = params_.data;
        p.levels = levelsForCapacity(next, p.bucketBlocks);
        const unsigned level = static_cast<unsigned>(trees_.size());
        trees_.push_back(std::make_unique<PathOram>(
            p, crypto::makeKey(0x9000 + level, seed),
            crypto::makeKey(0x9100 + level, seed),
            seed * 31 + 1 + level, /*store_salt=*/1000 + level));
        sizes.push_back(next);
    }

    // On-chip PosMap: the leaves of the TOP tree's blocks.  Leaf 0 is
    // the uninitialized default; untouched blocks are simply absent
    // from their tree, so any leaf value is a correct starting point.
    onChip_.assign(sizes.back(), 0);
}

std::uint64_t
RecursiveOram::capacityBlocks() const
{
    return params_.data.capacityBlocks();
}

BlockData
RecursiveOram::packLeaves(const std::vector<LeafId> &leaves) const
{
    SD_ASSERT(leaves.size() == leavesPerBlock());
    BlockData d{};
    for (std::size_t i = 0; i < leaves.size(); ++i)
        std::memcpy(d.data() + 8 * i, &leaves[i], 8);
    return d;
}

std::vector<LeafId>
RecursiveOram::unpackLeaves(const BlockData &data) const
{
    std::vector<LeafId> leaves(leavesPerBlock());
    for (std::size_t i = 0; i < leaves.size(); ++i)
        std::memcpy(&leaves[i], data.data() + 8 * i, 8);
    return leaves;
}

LeafId
RecursiveOram::fetchAndRemapLeaf(unsigned level, Addr idx,
                                 LeafId new_leaf, bool allow_plb_fill)
{
    const unsigned top = static_cast<unsigned>(trees_.size()) - 1;
    if (level == top) {
        SD_ASSERT(idx < onChip_.size());
        const LeafId old = onChip_[idx];
        onChip_[idx] = new_leaf;
        return old;
    }

    const unsigned parent_level = level + 1;
    const Addr parent_idx = idx >> leavesPerBlockLog2_;
    const unsigned slot =
        static_cast<unsigned>(idx & (leavesPerBlock() - 1));
    const std::uint64_t key = plbKey(parent_level, parent_idx);

    auto it = plb_.find(key);
    if (it != plb_.end()) {
        ++stats_.plbHits;
        plbLru_.erase(it->second.lruIt);
        plbLru_.push_front(key);
        it->second.lruIt = plbLru_.begin();
        const LeafId old = it->second.leaves[slot];
        it->second.leaves[slot] = new_leaf;
        it->second.dirty = true;
        return old;
    }
    ++stats_.plbMisses;

    // Miss: access the parent PosMap block in ORAM_{parent_level},
    // remapping it as a side effect (every touched block moves).
    const LeafId parent_new =
        rng_.nextBelow(trees_[parent_level]->params().numLeaves());
    const LeafId parent_old = fetchAndRemapLeaf(
        parent_level, parent_idx, parent_new, allow_plb_fill);

    LeafId old = 0;
    std::vector<LeafId> after;
    trees_[parent_level]->accessMutate(
        parent_idx, parent_old, parent_new,
        [&](BlockData &d) {
            auto leaves = unpackLeaves(d);
            old = leaves[slot];
            leaves[slot] = new_leaf;
            d = packLeaves(leaves);
            after = std::move(leaves);
        });
    ++stats_.treeAccesses;

    if (allow_plb_fill)
        plbInsert(parent_level, parent_idx, std::move(after),
                  /*dirty=*/false);
    return old;
}

void
RecursiveOram::plbInsert(unsigned level, Addr block,
                         std::vector<LeafId> leaves, bool dirty)
{
    const std::uint64_t key = plbKey(level, block);
    auto it = plb_.find(key);
    if (it != plb_.end()) {
        it->second.leaves = std::move(leaves);
        it->second.dirty = it->second.dirty || dirty;
        plbLru_.erase(it->second.lruIt);
        plbLru_.push_front(key);
        it->second.lruIt = plbLru_.begin();
        return;
    }

    while (plb_.size() >= params_.plbEntries) {
        const std::uint64_t victim_key = plbLru_.back();
        plbLru_.pop_back();
        auto vit = plb_.find(victim_key);
        SD_ASSERT(vit != plb_.end());
        const bool victim_dirty = vit->second.dirty;
        const std::vector<LeafId> victim_leaves =
            std::move(vit->second.leaves);
        plb_.erase(vit);
        if (victim_dirty) {
            writeBackPosmapBlock(
                static_cast<unsigned>(victim_key >> 48),
                victim_key & ((1ULL << 48) - 1), victim_leaves);
        }
    }

    plbLru_.push_front(key);
    PlbEntry entry;
    entry.leaves = std::move(leaves);
    entry.dirty = dirty;
    entry.lruIt = plbLru_.begin();
    plb_.emplace(key, std::move(entry));
}

void
RecursiveOram::writeBackPosmapBlock(unsigned level, Addr block,
                                    const std::vector<LeafId> &leaves)
{
    ++stats_.plbWritebacks;
    const LeafId new_leaf =
        rng_.nextBelow(trees_[level]->params().numLeaves());
    // No PLB fill during write-back, so eviction cannot cascade.
    const LeafId old_leaf =
        fetchAndRemapLeaf(level, block, new_leaf, /*allow_fill=*/false);
    trees_[level]->accessMutate(block, old_leaf, new_leaf,
                                [&](BlockData &d) {
                                    d = packLeaves(leaves);
                                });
    ++stats_.treeAccesses;
}

BlockData
RecursiveOram::access(Addr addr, OramOp op, const BlockData *new_data)
{
    SD_ASSERT(addr < capacityBlocks());
    ++stats_.requests;
    const LeafId new_leaf =
        rng_.nextBelow(trees_[0]->params().numLeaves());
    const LeafId old_leaf =
        fetchAndRemapLeaf(0, addr, new_leaf, /*allow_fill=*/true);
    const BlockData result =
        trees_[0]->accessExplicit(addr, old_leaf, new_leaf, op,
                                  new_data);
    ++stats_.treeAccesses;
    return result;
}

bool
RecursiveOram::integrityOk() const
{
    for (const auto &tree : trees_) {
        if (!tree->integrityOk())
            return false;
    }
    return true;
}

void
RecursiveOram::exportMetrics(util::MetricsRegistry &m,
                             const std::string &prefix) const
{
    m.setCounter(prefix + ".requests", stats_.requests);
    m.setCounter(prefix + ".tree_accesses", stats_.treeAccesses);
    m.setGauge(prefix + ".accesses_per_request",
               stats_.avgAccessesPerRequest());
    m.setCounter(prefix + ".plb.hits", stats_.plbHits);
    m.setCounter(prefix + ".plb.misses", stats_.plbMisses);
    m.setCounter(prefix + ".plb.writebacks", stats_.plbWritebacks);
    const std::uint64_t probes = stats_.plbHits + stats_.plbMisses;
    m.setGauge(prefix + ".plb.hit_rate",
               probes ? static_cast<double>(stats_.plbHits) / probes
                      : 0.0);
    trees_.front()->exportMetrics(m, prefix + ".data");
}

} // namespace secdimm::oram
