/**
 * @file
 * The untrusted memory image of an ORAM tree: every bucket stored as
 * AES-CTR ciphertext with a plaintext freshness counter and a PMMAC
 * tag binding (bucket id, counter, ciphertext) -- encrypt-then-MAC.
 *
 * This models the DRAM contents an attacker can see and tamper with;
 * tamperData()/replayFrom() let tests inject exactly such attacks.
 */

#ifndef SECUREDIMM_ORAM_BUCKET_STORE_HH
#define SECUREDIMM_ORAM_BUCKET_STORE_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "crypto/ctr_mode.hh"
#include "crypto/pmmac.hh"
#include "oram/bucket.hh"

namespace secdimm::fault
{
class FaultInjector;
}

namespace secdimm::oram
{

/** Result of an authenticated bucket read. */
struct BucketReadResult
{
    Bucket bucket;
    bool authentic = false;
};

/** Encrypted, MAC'd array of buckets (one per bucket sequence no.). */
class BucketStore
{
  public:
    /**
     * @param num_buckets total buckets in the tree
     * @param z           blocks per bucket
     * @param enc_key     AES key for CTR bucket encryption
     * @param mac_key     AES key for PMMAC
     * @param nonce_salt  distinguishes trees sharing a key (e.g.
     *                    Split ORAM slice id)
     */
    BucketStore(std::uint64_t num_buckets, unsigned z,
                const crypto::Aes128Key &enc_key,
                const crypto::Aes128Key &mac_key,
                std::uint64_t nonce_salt = 0);

    /** Encrypt, MAC, and store @p bucket; bumps its counter. */
    void writeBucket(std::uint64_t seq, const Bucket &bucket);

    /** Decrypt and verify; authentic==false on any mismatch. */
    BucketReadResult readBucket(std::uint64_t seq) const;

    /**
     * Authenticated read of @p n buckets at once (e.g. one ORAM
     * path).  Observer events and fault-injection rolls fire per
     * bucket in argument order, exactly as n readBucket() calls
     * would; the MACs are then verified in one batched PMMAC pass
     * over a reused contiguous arena instead of per-bucket copies.
     */
    void readBuckets(const std::uint64_t *seqs, std::size_t n,
                     std::vector<BucketReadResult> &out) const;

    /** Encrypt, MAC (one batched pass), and store @p n buckets. */
    void writeBuckets(const std::uint64_t *seqs, const Bucket *buckets,
                      std::size_t n);

    /** Current freshness counter of a bucket. */
    std::uint64_t counter(std::uint64_t seq) const;

    /** Flip one ciphertext byte (tamper-injection for tests). */
    void tamperData(std::uint64_t seq, std::size_t byte_index);

    /** Roll a bucket back to a previous image (replay attack). */
    void replayFrom(std::uint64_t seq,
                    const std::vector<std::uint8_t> &old_image,
                    std::uint64_t old_counter, crypto::Tag64 old_mac);

    /** Raw ciphertext image (for replay capture in tests). */
    const std::vector<std::uint8_t> &rawImage(std::uint64_t seq) const;
    crypto::Tag64 rawMac(std::uint64_t seq) const;

    std::uint64_t numBuckets() const { return images_.size(); }
    unsigned z() const { return z_; }

    /**
     * Fired on every bucket read/write with the bucket sequence
     * number: the physical access pattern an adversary watching this
     * memory image observes (verify::ChannelObserver).  Single
     * consumer; empty fn detaches.
     */
    using AccessObserverFn =
        std::function<void(bool write, std::uint64_t seq)>;
    void setAccessObserver(AccessObserverFn fn)
    {
        observer_ = std::move(fn);
    }

    /**
     * Arm transient-read fault injection (nullptr disarms).  A rolled
     * DRAM bit flip corrupts only the copy returned by readBucket();
     * the stored image stays intact, so the PMMAC detects the flip
     * and a retry of the same read succeeds.  Not owned.
     */
    void setFaultInjector(fault::FaultInjector *inj) { injector_ = inj; }

    /** Fold this store's crypto work into @p t (crypto.* metrics). */
    void
    collectCrypto(crypto::CryptoTotals &t) const
    {
        cipher_.collectTotals(t);
        mac_.collectTotals(t);
    }

  private:
    std::uint64_t nonce(std::uint64_t seq) const;

    unsigned z_;
    crypto::CtrCipher cipher_;
    crypto::Pmmac mac_;
    std::uint64_t nonceSalt_;
    std::vector<std::vector<std::uint8_t>> images_;
    std::vector<std::uint64_t> counters_;
    std::vector<crypto::Tag64> macs_;
    AccessObserverFn observer_;
    fault::FaultInjector *injector_ = nullptr;
    /** Scratch for batch reads/writes; grows to one path, then stays. */
    mutable std::vector<std::uint8_t> arena_;
};

} // namespace secdimm::oram

#endif // SECUREDIMM_ORAM_BUCKET_STORE_HH
