/**
 * @file
 * Path ORAM tree indexing and the row-buffer-friendly subtree-packed
 * physical layout (Ren et al. [10], used by the paper's baseline and
 * SDIMM designs).
 *
 * The binary tree is re-organized as a tree of small subtrees of
 * `subtreeLevels` levels each; all buckets of a subtree occupy
 * consecutive 64-byte lines, so reading a path touches one open row
 * per subtree instead of one per bucket.
 */

#ifndef SECUREDIMM_ORAM_TREE_LAYOUT_HH
#define SECUREDIMM_ORAM_TREE_LAYOUT_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace secdimm::oram
{

/** Identifies one bucket by tree level and index within the level. */
struct BucketPos
{
    unsigned level = 0;
    std::uint64_t index = 0;

    bool
    operator==(const BucketPos &o) const
    {
        return level == o.level && index == o.index;
    }
};

/** Bucket on the path from the root to @p leaf at @p level. */
inline BucketPos
pathBucket(LeafId leaf, unsigned level, unsigned tree_levels)
{
    return BucketPos{level, leaf >> (tree_levels - level)};
}

/** Level-order (BFS) sequence number of a bucket. */
inline std::uint64_t
bucketSeqBfs(const BucketPos &b)
{
    return ((std::uint64_t{1} << b.level) - 1) + b.index;
}

/** Subtree-packed linear layout of a tree's buckets onto lines. */
class TreeLayout
{
  public:
    /**
     * @param tree_levels    leaf level L (levels 0..L exist)
     * @param lines_per_bucket   64-byte lines per bucket
     * @param subtree_levels levels per packed subtree (>= 1)
     */
    TreeLayout(unsigned tree_levels, unsigned lines_per_bucket,
               unsigned subtree_levels = 4);

    /** Packed sequence number of a bucket (0 .. numBuckets-1). */
    std::uint64_t bucketSeq(const BucketPos &b) const;

    /** First line address of a bucket. */
    Addr
    bucketLineAddr(const BucketPos &b) const
    {
        return bucketSeq(b) * linesPerBucket_;
    }

    /** Total lines the tree occupies. */
    Addr
    totalLines() const
    {
        return totalBuckets_ * linesPerBucket_;
    }

    unsigned treeLevels() const { return treeLevels_; }
    unsigned linesPerBucket() const { return linesPerBucket_; }
    unsigned subtreeLevels() const { return subtreeLevels_; }
    std::uint64_t numBuckets() const { return totalBuckets_; }

    /**
     * Append the line addresses of every bucket on the path to
     * @p leaf, for levels [first_level, L], to @p out.
     */
    void pathLines(LeafId leaf, unsigned first_level,
                   std::vector<Addr> &out) const;

    /**
     * Same lines split into the metadata lines (the last
     * @p meta_lines of each bucket) and the data lines.  ORAM
     * controllers fetch metadata first: it identifies the requested
     * block, enabling the early response that decouples access
     * latency from path bandwidth.
     */
    void pathLinesPhased(LeafId leaf, unsigned first_level,
                         unsigned meta_lines, std::vector<Addr> &meta,
                         std::vector<Addr> &data) const;

  private:
    unsigned treeLevels_;
    unsigned linesPerBucket_;
    unsigned subtreeLevels_;
    std::uint64_t totalBuckets_;

    /** Cumulative bucket count before each super-level's subtrees. */
    std::vector<std::uint64_t> superBase_;
    /** Buckets per subtree in each super-level. */
    std::vector<std::uint64_t> superSize_;
};

} // namespace secdimm::oram

#endif // SECUREDIMM_ORAM_TREE_LAYOUT_HH
