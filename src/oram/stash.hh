/**
 * @file
 * The Path ORAM stash: a small on-controller buffer holding blocks
 * between the path read and the path write-back, plus the greedy
 * eviction rule that repacks stash blocks into path buckets.
 */

#ifndef SECUREDIMM_ORAM_STASH_HH
#define SECUREDIMM_ORAM_STASH_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/metrics.hh"
#include "util/types.hh"

namespace secdimm::oram
{

/** One stash-resident block. */
struct StashEntry
{
    Addr addr = invalidAddr;
    LeafId leaf = invalidLeaf;
    BlockData data{};
};

/** Address-indexed stash with occupancy tracking. */
class Stash
{
  public:
    explicit Stash(unsigned capacity) : capacity_(capacity) {}

    /** Insert or overwrite; returns false if at capacity (new addr). */
    bool put(Addr addr, LeafId leaf, const BlockData &data);

    /** Pointer to the entry or nullptr. */
    StashEntry *find(Addr addr);
    const StashEntry *find(Addr addr) const;

    /** Remove an entry; returns true if present. */
    bool erase(Addr addr);

    /**
     * Greedy eviction: pop up to @p z blocks whose leaf path passes
     * through the bucket at (@p level, on the path to @p path_leaf) in
     * a tree of @p tree_levels levels.  Removed from the stash.
     */
    std::vector<StashEntry> evictForBucket(LeafId path_leaf,
                                           unsigned level,
                                           unsigned tree_levels,
                                           unsigned z);

    std::size_t size() const { return entries_.size(); }
    unsigned capacity() const { return capacity_; }
    std::size_t maxSizeSeen() const { return maxSize_; }
    bool full() const { return entries_.size() >= capacity_; }

    /**
     * Record the current occupancy as one histogram sample.  The
     * owner calls this once per accessORAM (after the path read, at
     * the occupancy peak) so the histogram matches Path ORAM's
     * stash-occupancy analysis [11].
     */
    void sampleOccupancy() { occupancy_.sample(entries_.size()); }
    const util::LogHistogram &occupancyHistogram() const
    {
        return occupancy_;
    }

    /** Iteration support (tests, Split shadow stash). */
    const std::unordered_map<Addr, StashEntry> &entries() const
    {
        return entries_;
    }

  private:
    unsigned capacity_;
    std::unordered_map<Addr, StashEntry> entries_;
    std::size_t maxSize_ = 0;
    util::LogHistogram occupancy_;
};

} // namespace secdimm::oram

#endif // SECUREDIMM_ORAM_STASH_HH
