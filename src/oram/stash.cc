#include "oram/stash.hh"

#include <algorithm>

#include "util/logging.hh"

namespace secdimm::oram
{

bool
Stash::put(Addr addr, LeafId leaf, const BlockData &data)
{
    auto it = entries_.find(addr);
    if (it != entries_.end()) {
        it->second.leaf = leaf;
        it->second.data = data;
        return true;
    }
    if (entries_.size() >= capacity_)
        return false;
    entries_.emplace(addr, StashEntry{addr, leaf, data});
    maxSize_ = std::max(maxSize_, entries_.size());
    return true;
}

StashEntry *
Stash::find(Addr addr)
{
    auto it = entries_.find(addr);
    return it == entries_.end() ? nullptr : &it->second;
}

const StashEntry *
Stash::find(Addr addr) const
{
    auto it = entries_.find(addr);
    return it == entries_.end() ? nullptr : &it->second;
}

bool
Stash::erase(Addr addr)
{
    return entries_.erase(addr) != 0;
}

std::vector<StashEntry>
Stash::evictForBucket(LeafId path_leaf, unsigned level,
                      unsigned tree_levels, unsigned z)
{
    SD_ASSERT(level <= tree_levels);
    const unsigned shift = tree_levels - level;
    const std::uint64_t bucket_index = path_leaf >> shift;

    std::vector<StashEntry> picked;
    picked.reserve(z);
    for (auto it = entries_.begin();
         it != entries_.end() && picked.size() < z;) {
        if ((it->second.leaf >> shift) == bucket_index) {
            picked.push_back(it->second);
            it = entries_.erase(it);
        } else {
            ++it;
        }
    }
    return picked;
}

} // namespace secdimm::oram
