/**
 * @file
 * PosMap Lookaside Buffer (Fletcher et al. [4]): a set-associative
 * cache of PosMap blocks that short-circuits recursive PosMap ORAM
 * accesses.  Keys are (posmap level, posmap block index) pairs.
 */

#ifndef SECUREDIMM_ORAM_PLB_HH
#define SECUREDIMM_ORAM_PLB_HH

#include <cstdint>
#include <string>
#include <vector>

#include "util/metrics.hh"

namespace secdimm::oram
{

/** Set-associative LRU cache over 64-bit keys. */
class Plb
{
  public:
    Plb(unsigned entries, unsigned ways);

    /** Probe (and LRU-touch on hit). */
    bool lookup(std::uint64_t key);

    /** Install a key (evicting LRU in its set if needed). */
    void insert(std::uint64_t key);

    /** Probe without disturbing LRU state. */
    bool contains(std::uint64_t key) const;

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    double
    hitRate() const
    {
        const std::uint64_t t = hits_ + misses_;
        return t ? static_cast<double>(hits_) / t : 0.0;
    }

    /** Export hit/miss counters under @p prefix (docs/METRICS.md). */
    void
    exportMetrics(util::MetricsRegistry &m,
                  const std::string &prefix) const
    {
        m.setCounter(prefix + ".hits", hits_);
        m.setCounter(prefix + ".misses", misses_);
        m.setGauge(prefix + ".hit_rate", hitRate());
    }

    /** Compose the canonical (level, block) key. */
    static std::uint64_t
    makeKey(unsigned level, std::uint64_t block_index)
    {
        return (static_cast<std::uint64_t>(level) << 56) |
               (block_index & ((std::uint64_t{1} << 56) - 1));
    }

  private:
    struct Way
    {
        bool valid = false;
        std::uint64_t key = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned ways_;
    std::uint64_t sets_;
    std::vector<Way> table_;
    std::uint64_t clock_ = 0;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace secdimm::oram

#endif // SECUREDIMM_ORAM_PLB_HH
