#include "oram/plb.hh"

#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace secdimm::oram
{

Plb::Plb(unsigned entries, unsigned ways) : ways_(ways)
{
    SD_ASSERT(ways >= 1);
    SD_ASSERT(entries >= ways);
    sets_ = entries / ways;
    SD_ASSERT(isPowerOfTwo(sets_));
    table_.resize(sets_ * ways_);
}

bool
Plb::lookup(std::uint64_t key)
{
    const std::uint64_t set = (key ^ (key >> 17)) & (sets_ - 1);
    Way *base = &table_[set * ways_];
    ++clock_;
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].key == key) {
            base[w].lastUse = clock_;
            ++hits_;
            return true;
        }
    }
    ++misses_;
    return false;
}

bool
Plb::contains(std::uint64_t key) const
{
    const std::uint64_t set = (key ^ (key >> 17)) & (sets_ - 1);
    const Way *base = &table_[set * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].key == key)
            return true;
    }
    return false;
}

void
Plb::insert(std::uint64_t key)
{
    const std::uint64_t set = (key ^ (key >> 17)) & (sets_ - 1);
    Way *base = &table_[set * ways_];
    ++clock_;
    // Refresh if present.
    for (unsigned w = 0; w < ways_; ++w) {
        if (base[w].valid && base[w].key == key) {
            base[w].lastUse = clock_;
            return;
        }
    }
    unsigned victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (unsigned w = 0; w < ways_; ++w) {
        if (!base[w].valid) {
            victim = w;
            break;
        }
        if (base[w].lastUse < oldest) {
            oldest = base[w].lastUse;
            victim = w;
        }
    }
    base[victim] = Way{true, key, clock_};
}

} // namespace secdimm::oram
