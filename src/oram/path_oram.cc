#include "oram/path_oram.hh"

#include <algorithm>

#include "fault/fault_injector.hh"
#include "util/logging.hh"

namespace secdimm::oram
{

PathOram::PathOram(const OramParams &params,
                   const crypto::Aes128Key &enc_key,
                   const crypto::Aes128Key &mac_key, std::uint64_t seed,
                   std::uint64_t store_salt)
    : params_(params),
      layout_(params.levels, params.linesPerBucket()),
      store_(params.numBuckets(), params.bucketBlocks, enc_key, mac_key,
             store_salt),
      stash_(params.stashCapacity),
      rng_(seed),
      posMap_(params.capacityBlocks()),
      expectedCounter_(params.numBuckets(), 1)
{
    // The BucketStore constructor wrote every bucket once (counter 1).
    for (auto &leaf : posMap_)
        leaf = rng_.nextBelow(params_.numLeaves());
}

LeafId
PathOram::leafOf(Addr addr) const
{
    SD_ASSERT(addr < posMap_.size());
    return posMap_[addr];
}

void
PathOram::readPath(LeafId leaf)
{
    // One batched read covers the whole path: per-bucket observer
    // events and fault rolls still fire root-to-leaf inside
    // readBuckets, but MAC verification is a single PMMAC batch.
    pathSeqs_.clear();
    for (unsigned level = 0; level <= params_.levels; ++level) {
        pathSeqs_.push_back(
            layout_.bucketSeq(pathBucket(leaf, level, params_.levels)));
    }
    store_.readBuckets(pathSeqs_.data(), pathSeqs_.size(), pathRead_);

    for (unsigned level = 0; level <= params_.levels; ++level) {
        const std::uint64_t seq = pathSeqs_[level];
        BucketReadResult &r = pathRead_[level];
        bool counter_fresh =
            store_.counter(seq) == expectedCounter_[seq];
        if (injector_ && (!r.authentic || !counter_fresh)) {
            /*
             * Detect-and-retry: a transient read flip leaves the
             * stored image intact, so re-reading the same bucket
             * recovers it.  Permanent tampering (or a replayed
             * counter) survives every retry and falls through to the
             * fail-stop accounting below.  Each failed verification
             * is one detection, pairing 1:1 with each injected flip,
             * and each granted re-read one recovery (a re-read that
             * flips again is a NEW fault), so the ledger keeps
             * detected == recovered + unrecovered exactly.
             */
            unsigned attempts = 0;
            for (;;) {
                injector_->recordDetected(fault::FaultKind::DramBitFlip);
                if (attempts >= injector_->maxRetries()) {
                    injector_->recordUnrecovered(
                        fault::FaultKind::DramBitFlip,
                        "store.read_path", attempts);
                    break;
                }
                ++attempts;
                injector_->recordRecovered(fault::FaultKind::DramBitFlip,
                                           "store.read_path", 1);
                r = store_.readBucket(seq);
                counter_fresh =
                    store_.counter(seq) == expectedCounter_[seq];
                if (r.authentic && counter_fresh)
                    break;
            }
        }
        if (!r.authentic || !counter_fresh) {
            ++stats_.integrityFailures;
            continue;
        }
        for (unsigned i = 0; i < r.bucket.z(); ++i) {
            const BlockSlot &s = r.bucket.slot(i);
            if (s.valid()) {
                const bool ok = stash_.put(s.addr, s.leaf, s.data);
                if (!ok) {
                    panic("stash overflow: capacity %u exceeded while "
                          "reading path to leaf %llu",
                          stash_.capacity(),
                          static_cast<unsigned long long>(leaf));
                }
            }
        }
    }
    stash_.sampleOccupancy();
}

void
PathOram::writePath(LeafId leaf)
{
    // Bottom-up greedy packing maximizes how deep blocks settle.
    // Packing stays sequential (each level sees what deeper levels
    // already took), but the encrypt+MAC of the assembled path runs
    // as one batched store write.
    pathSeqs_.clear();
    pathBuckets_.clear();
    for (int level = static_cast<int>(params_.levels); level >= 0;
         --level) {
        const auto picked = stash_.evictForBucket(
            leaf, static_cast<unsigned>(level), params_.levels,
            params_.bucketBlocks);
        Bucket bucket(params_.bucketBlocks);
        for (std::size_t i = 0; i < picked.size(); ++i) {
            bucket.slot(static_cast<unsigned>(i)) =
                BlockSlot{picked[i].addr, picked[i].leaf,
                          picked[i].data};
        }
        pathSeqs_.push_back(layout_.bucketSeq(pathBucket(
            leaf, static_cast<unsigned>(level), params_.levels)));
        pathBuckets_.push_back(std::move(bucket));
    }
    store_.writeBuckets(pathSeqs_.data(), pathBuckets_.data(),
                        pathSeqs_.size());
    for (const std::uint64_t seq : pathSeqs_)
        expectedCounter_[seq] = store_.counter(seq);
}

BlockData
PathOram::access(Addr addr, OramOp op, const BlockData *new_data)
{
    SD_ASSERT(addr < posMap_.size());
    ++stats_.accesses;

    // Step 1: look up and remap the leaf.
    const LeafId leaf = posMap_[addr];
    const LeafId new_leaf = rng_.nextBelow(params_.numLeaves());
    posMap_[addr] = new_leaf;
    leafTrace_.push_back(leaf);

    // Step 2: fetch the whole path into the stash.
    readPath(leaf);

    // Step 3: serve the block (uninitialized blocks read as zero).
    StashEntry *entry = stash_.find(addr);
    BlockData old_value{};
    if (entry != nullptr) {
        old_value = entry->data;
        entry->leaf = new_leaf;
        if (op == OramOp::Write) {
            SD_ASSERT(new_data != nullptr);
            entry->data = *new_data;
        }
    } else {
        BlockData fresh{};
        if (op == OramOp::Write) {
            SD_ASSERT(new_data != nullptr);
            fresh = *new_data;
        }
        if (!stash_.put(addr, new_leaf, fresh))
            panic("stash overflow inserting accessed block");
    }

    // Step 4: write the path back.
    writePath(leaf);

    stats_.maxStashSize =
        std::max(stats_.maxStashSize, stash_.maxSizeSeen());

    // Background eviction keeps the stash comfortably below capacity.
    while (stash_.size() > params_.stashCapacity / 2)
        backgroundEvict();

    return old_value;
}

BlockData
PathOram::accessExplicit(Addr addr, LeafId old_leaf, LeafId new_leaf,
                         OramOp op, const BlockData *new_data)
{
    SD_ASSERT(old_leaf < params_.numLeaves());
    ++stats_.accesses;
    leafTrace_.push_back(old_leaf);

    readPath(old_leaf);

    const bool remove = new_leaf == invalidLeaf;
    StashEntry *entry = stash_.find(addr);
    BlockData old_value{};
    if (entry != nullptr) {
        old_value = entry->data;
        if (op == OramOp::Write) {
            SD_ASSERT(new_data != nullptr);
            entry->data = *new_data;
        }
        if (remove) {
            stash_.erase(addr);
        } else {
            entry->leaf = new_leaf;
        }
    } else if (!remove) {
        BlockData fresh{};
        if (op == OramOp::Write) {
            SD_ASSERT(new_data != nullptr);
            fresh = *new_data;
        }
        if (!stash_.put(addr, new_leaf, fresh))
            panic("stash overflow inserting accessed block");
    } else if (op == OramOp::Write && new_data != nullptr) {
        // Removing an uninitialized block: its post-write value
        // travels with the caller (APPEND), nothing to keep here.
        old_value = BlockData{};
    }

    writePath(old_leaf);
    stats_.maxStashSize =
        std::max(stats_.maxStashSize, stash_.maxSizeSeen());
    while (stash_.size() > params_.stashCapacity / 2)
        backgroundEvict();
    return old_value;
}

BlockData
PathOram::accessMutate(Addr addr, LeafId old_leaf, LeafId new_leaf,
                       const std::function<void(BlockData &)> &mutate)
{
    SD_ASSERT(old_leaf < params_.numLeaves());
    SD_ASSERT(new_leaf < params_.numLeaves());
    ++stats_.accesses;
    leafTrace_.push_back(old_leaf);

    readPath(old_leaf);

    StashEntry *entry = stash_.find(addr);
    BlockData old_value{};
    if (entry != nullptr) {
        old_value = entry->data;
        mutate(entry->data);
        entry->leaf = new_leaf;
    } else {
        BlockData fresh{};
        mutate(fresh);
        if (!stash_.put(addr, new_leaf, fresh))
            panic("stash overflow inserting mutated block");
    }

    writePath(old_leaf);
    stats_.maxStashSize =
        std::max(stats_.maxStashSize, stash_.maxSizeSeen());
    while (stash_.size() > params_.stashCapacity / 2)
        backgroundEvict();
    return old_value;
}

bool
PathOram::adoptBlock(Addr addr, LeafId local_leaf, const BlockData &data)
{
    SD_ASSERT(local_leaf < params_.numLeaves());
    const bool ok = stash_.put(addr, local_leaf, data);
    if (ok && stash_.size() > params_.stashCapacity / 2)
        backgroundEvict();
    return ok;
}

void
PathOram::backgroundEvict()
{
    ++stats_.dummyAccesses;
    const LeafId leaf = rng_.nextBelow(params_.numLeaves());
    leafTrace_.push_back(leaf);
    readPath(leaf);
    writePath(leaf);
}

void
PathOram::exportMetrics(util::MetricsRegistry &m,
                        const std::string &prefix) const
{
    m.setCounter(prefix + ".accesses", stats_.accesses);
    m.setCounter(prefix + ".dummy_accesses", stats_.dummyAccesses);
    m.setCounter(prefix + ".integrity_failures",
                 stats_.integrityFailures);
    m.setCounter(prefix + ".stash.max", stats_.maxStashSize);
    m.setGauge(prefix + ".stash.size",
               static_cast<double>(stash_.size()));
    m.histogram(prefix + ".stash.occupancy")
        .merge(stash_.occupancyHistogram());
}

} // namespace secdimm::oram
