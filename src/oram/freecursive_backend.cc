#include "oram/freecursive_backend.hh"

#include <algorithm>

#include "util/logging.hh"

namespace secdimm::oram
{

namespace
{

/** Completion-id kinds (encoded in the top bits of DRAM request ids). */
constexpr std::uint64_t kindShift = 62;
constexpr std::uint64_t kindPlain = 0;
constexpr std::uint64_t kindData = 1;
constexpr std::uint64_t kindWrite = 2;
constexpr std::uint64_t kindMeta = 3;

std::uint64_t
makeId(std::uint64_t kind)
{
    return kind << kindShift;
}

std::uint64_t
idKind(std::uint64_t id)
{
    return id >> kindShift;
}

} // namespace

FreecursiveBackend::FreecursiveBackend(const OramParams &oram,
                                       const RecursionParams &recursion,
                                       const dram::TimingParams &timing,
                                       const dram::Geometry &geom,
                                       std::uint64_t seed)
    : oram_(oram),
      layout_(oram.levels, oram.linesPerBucket()),
      recursion_(recursion),
      sys_("freecursive", timing, geom, dram::MapPolicy::RowRankBankCol),
      rng_(seed)
{
    sys_.setCompletionCallback(
        [this](const dram::DramCompletion &c) { onDramDone(c); });
    stagedPerCh_.resize(sys_.channelCount());
    blockFetchCycles_ = timing.cl + timing.tBURST + 2;
}

void
FreecursiveBackend::setCompletionCallback(CompletionFn fn)
{
    onComplete_ = std::move(fn);
}

bool
FreecursiveBackend::canAccept() const
{
    return jobs_.size() < jobCapacity_;
}

Addr
FreecursiveBackend::lineToDramBlock(Addr line) const
{
    // The tree occupies lines [0, totalLines); larger configurations
    // wrap (timing-only aliasing, see DESIGN.md).
    return line % sys_.blockCount();
}

void
FreecursiveBackend::stageLine(Addr line, Tick at, std::uint64_t kind)
{
    const Addr block = lineToDramBlock(line);
    const unsigned ch = sys_.channelOf(block);
    const bool write = kind == kindWrite;
    stagedPerCh_[ch][write ? 1 : 0].push_back(
        StagedLine{block, at, kind});
    ++stagedTotal_;
    if (kind == kindMeta)
        ++stagedMetaReads_;
    else if (kind == kindData)
        ++stagedDataReads_;
}

void
FreecursiveBackend::access(std::uint64_t id, Addr byte_addr, bool write,
                           Tick now)
{
    (void)write; // Reads and writes are indistinguishable in ORAM.
    SD_ASSERT(canAccept());
    const std::uint64_t block = byte_addr / blockBytes;
    const unsigned ops = recursion_.opsForAccess(block);
    jobs_.push_back(Job{id, ops, now});
    ++traffic_.requests;
    startNextOp(now);
    pump();
}

void
FreecursiveBackend::startNextOp(Tick now)
{
    if (opInFlight_)
        return;
    // Pick the pending job whose next op is ready soonest.
    Job *job = nullptr;
    for (auto &j : jobs_) {
        if (!j.opIssued && (job == nullptr || j.readyAt < job->readyAt))
            job = &j;
    }
    if (job == nullptr)
        return;
    job->opIssued = true;
    opJobId_ = job->id;
    opInFlight_ = true;
    responseSent_ = false;
    opStartAt_ = std::max(now, job->readyAt);
    ++traffic_.accessOrams;

    opLeaf_ = rng_.nextBelow(oram_.numLeaves());
    std::vector<Addr> meta, data;
    layout_.pathLinesPhased(opLeaf_, oram_.cachedLevels,
                            oram_.metadataLines, meta, data);
    lastReadDone_ = opStartAt_;
    lastMetaDone_ = opStartAt_;
    for (Addr line : meta)
        stageLine(line, opStartAt_, kindMeta);
    for (Addr line : data)
        stageLine(line, opStartAt_, kindData);
    traffic_.channelLines += meta.size() + data.size();
}

void
FreecursiveBackend::respondOp(Tick avail)
{
    // The metadata pass identified the block; one row-hit fetch and a
    // decrypt later it is available -- this is what unblocks the LLC
    // (or the next recursion level), while the rest of the path
    // streams in behind.
    Job *job = nullptr;
    for (auto &j : jobs_) {
        if (j.id == opJobId_) {
            job = &j;
            break;
        }
    }
    SD_ASSERT(job != nullptr);
    SD_ASSERT(job->opsLeft > 0);
    --job->opsLeft;
    job->opIssued = false;
    if (job->opsLeft == 0) {
        if (onComplete_)
            onComplete_(job->id, avail);
        for (auto it = jobs_.begin(); it != jobs_.end(); ++it) {
            if (it->id == opJobId_) {
                jobs_.erase(it);
                break;
            }
        }
    } else {
        job->readyAt = avail;
    }
}

void
FreecursiveBackend::finishOpReads(Tick reads_done)
{
    // Path fully read: stage the write-back and free the controller.
    const Tick wb_at = reads_done + oram_.encLatency;
    std::vector<Addr> meta, data;
    layout_.pathLinesPhased(opLeaf_, oram_.cachedLevels,
                            oram_.metadataLines, meta, data);
    for (Addr line : data)
        stageLine(line, wb_at, kindWrite);
    for (Addr line : meta)
        stageLine(line, wb_at, kindWrite);
    traffic_.channelLines += meta.size() + data.size();

    opInFlight_ = false;
    startNextOp(reads_done);
    pump();
}

void
FreecursiveBackend::accessPlain(std::uint64_t id, Addr byte_addr,
                                bool write, Tick now)
{
    const Addr block = (byte_addr / blockBytes) % sys_.blockCount();
    const std::uint64_t seq = nextPlainSeq_++;
    plainIds_.emplace(seq, id);
    sys_.enqueue(makeId(kindPlain) | seq, block, write, now);
}

void
FreecursiveBackend::setPlainCompletionCallback(CompletionFn fn)
{
    onPlainComplete_ = std::move(fn);
}

bool
FreecursiveBackend::canAcceptPlain(Addr byte_addr, bool write) const
{
    const Addr block = (byte_addr / blockBytes) % sys_.blockCount();
    return sys_.canEnqueue(block, write);
}

void
FreecursiveBackend::onDramDone(const dram::DramCompletion &c)
{
    const std::uint64_t kind = idKind(c.id);
    if (kind == kindPlain) {
        const std::uint64_t seq = c.id & ((1ULL << kindShift) - 1);
        auto it = plainIds_.find(seq);
        SD_ASSERT(it != plainIds_.end());
        const std::uint64_t caller_id = it->second;
        plainIds_.erase(it);
        if (onPlainComplete_)
            onPlainComplete_(caller_id, c.doneAt);
        pump();
        return;
    }
    if (kind == kindWrite) {
        SD_ASSERT(outstandingWrites_ > 0);
        --outstandingWrites_;
        pump();
        return;
    }

    SD_ASSERT(outstandingReads_ > 0);
    --outstandingReads_;
    lastReadDone_ = std::max(lastReadDone_, c.doneAt);
    if (kind == kindMeta) {
        SD_ASSERT(outstandingMetaReads_ > 0);
        --outstandingMetaReads_;
        lastMetaDone_ = std::max(lastMetaDone_, c.doneAt);
    }
    if (opInFlight_ && outstandingReads_ == 0 && stagedMetaReads_ == 0 &&
        stagedDataReads_ == 0) {
        // The CPU-side controller finds the block only once the whole
        // path is in the stash; respond, then write back.
        if (!responseSent_) {
            responseSent_ = true;
            respondOp(lastReadDone_ + oram_.encLatency);
        }
        finishOpReads(lastReadDone_);
    }
    pump();
}

void
FreecursiveBackend::pump()
{
    if (stagedTotal_ == 0)
        return;
    for (unsigned c = 0; c < sys_.channelCount(); ++c) {
        auto &ch = sys_.channel(c);

        auto &rq = stagedPerCh_[c][0];
        while (!rq.empty() && ch.canEnqueue(false)) {
            const StagedLine &s = rq.front();
            ch.enqueue(makeId(s.kind), sys_.localBlockOf(s.line), false,
                       s.at);
            ++outstandingReads_;
            if (s.kind == kindMeta) {
                SD_ASSERT(stagedMetaReads_ > 0);
                --stagedMetaReads_;
                ++outstandingMetaReads_;
            } else {
                SD_ASSERT(stagedDataReads_ > 0);
                --stagedDataReads_;
            }
            rq.pop_front();
            --stagedTotal_;
        }

        auto &wq = stagedPerCh_[c][1];
        while (!wq.empty() && ch.canEnqueue(true)) {
            const StagedLine s = wq.front();
            wq.pop_front();
            --stagedTotal_;
            ch.enqueue(makeId(kindWrite), sys_.localBlockOf(s.line),
                       true, s.at);
            ++outstandingWrites_;
        }
    }
}

Tick
FreecursiveBackend::nextEventAt() const
{
    return sys_.nextEventAt();
}

void
FreecursiveBackend::advanceTo(Tick now)
{
    sys_.advanceTo(now);
    pump();
}

bool
FreecursiveBackend::idle() const
{
    return jobs_.empty() && !opInFlight_ && stagedTotal_ == 0 &&
           outstandingReads_ == 0 && outstandingWrites_ == 0 &&
           sys_.idle();
}

} // namespace secdimm::oram
