/**
 * @file
 * Functional Freecursive ORAM (Fletcher et al. [4], Section II-D):
 * the data tree's PosMap is itself stored in a smaller ORAM, whose
 * PosMap lives in a yet smaller one, until the top PosMap fits
 * on-chip.  A PosMap Lookaside Buffer caches PosMap *blocks* (leaf
 * arrays) with dirty write-back, short-circuiting the recursion the
 * way the paper's PLB does.
 *
 * This is the functional counterpart of the timing-layer
 * RecursionEngine: real blocks, real leaf swaps, real write-backs.
 */

#ifndef SECUREDIMM_ORAM_RECURSIVE_ORAM_HH
#define SECUREDIMM_ORAM_RECURSIVE_ORAM_HH

#include <list>
#include <memory>
#include <unordered_map>
#include <vector>

#include "oram/path_oram.hh"

namespace secdimm::oram
{

/** Statistics of a recursive ORAM instance. */
struct RecursiveOramStats
{
    std::uint64_t requests = 0;
    std::uint64_t treeAccesses = 0; ///< accessORAMs over all trees.
    std::uint64_t plbHits = 0;
    std::uint64_t plbMisses = 0;
    std::uint64_t plbWritebacks = 0;

    double
    avgAccessesPerRequest() const
    {
        return requests ? static_cast<double>(treeAccesses) / requests
                        : 0.0;
    }
};

/** Path ORAM with recursive PosMaps and a PLB. */
class RecursiveOram
{
  public:
    struct Params
    {
        OramParams data;              ///< Shape of ORAM_0.
        unsigned leavesPerBlockLog2 = 3; ///< 8 x 8-byte leaves / block.
        std::uint64_t onChipMaxEntries = 1024;
        std::size_t plbEntries = 64;  ///< Cached PosMap blocks.
    };

    RecursiveOram(const Params &params, std::uint64_t seed);

    std::uint64_t capacityBlocks() const;

    /** accessORAM on the data tree, paying real recursion costs. */
    BlockData access(Addr addr, OramOp op,
                     const BlockData *new_data = nullptr);

    /** Number of PosMap ORAMs in memory (ORAM_1 .. ORAM_n). */
    unsigned posmapLevels() const
    {
        return static_cast<unsigned>(trees_.size()) - 1;
    }

    const RecursiveOramStats &stats() const { return stats_; }
    bool integrityOk() const;

    /**
     * Arm DRAM-read fault injection and bounded retry on every tree,
     * data and PosMap alike (nullptr disarms).  Not owned.
     */
    void setFaultInjector(fault::FaultInjector *inj)
    {
        for (auto &t : trees_)
            t->setFaultInjector(inj);
    }

    /**
     * Export recursion/PLB counters and the data tree's stash
     * statistics under @p prefix (docs/METRICS.md "oram.*").
     */
    void exportMetrics(util::MetricsRegistry &m,
                       const std::string &prefix) const;

    /** Tree at @p level (0 = data), for tests and verify audits. */
    PathOram &tree(unsigned level) { return *trees_[level]; }
    const PathOram &tree(unsigned level) const { return *trees_[level]; }

    /** Fold every tree's crypto work into @p t (crypto.* metrics). */
    void
    collectCrypto(crypto::CryptoTotals &t) const
    {
        for (const auto &tree : trees_)
            tree->collectCrypto(t);
    }

  private:
    struct PlbEntry
    {
        std::vector<LeafId> leaves;
        bool dirty = false;
        std::list<std::uint64_t>::iterator lruIt;
    };

    static std::uint64_t
    plbKey(unsigned level, Addr block)
    {
        return (static_cast<std::uint64_t>(level) << 48) | block;
    }

    unsigned leavesPerBlock() const
    {
        return 1u << leavesPerBlockLog2_;
    }

    /** Pack/unpack a PosMap block's leaf array. */
    BlockData packLeaves(const std::vector<LeafId> &leaves) const;
    std::vector<LeafId> unpackLeaves(const BlockData &data) const;

    /**
     * Return the current leaf of block @p idx of tree @p level and
     * atomically replace it with @p new_leaf wherever it is stored
     * (on-chip table, PLB, or a parent PosMap block).
     */
    LeafId fetchAndRemapLeaf(unsigned level, Addr idx, LeafId new_leaf,
                             bool allow_plb_fill);

    /** Insert a PosMap block into the PLB, evicting (and writing
     *  back) the LRU entry if needed. */
    void plbInsert(unsigned level, Addr block,
                   std::vector<LeafId> leaves, bool dirty);

    /** Write a dirty PosMap block back into its tree. */
    void writeBackPosmapBlock(unsigned level, Addr block,
                              const std::vector<LeafId> &leaves);

    Params params_;
    unsigned leavesPerBlockLog2_;
    Rng rng_;

    /** trees_[0] = data; trees_[i] stores PosMap of trees_[i-1]. */
    std::vector<std::unique_ptr<PathOram>> trees_;

    /** Leaves of the top tree's blocks (the on-chip PosMap). */
    std::vector<LeafId> onChip_;

    std::unordered_map<std::uint64_t, PlbEntry> plb_;
    std::list<std::uint64_t> plbLru_; ///< Front = most recent.

    RecursiveOramStats stats_;
};

} // namespace secdimm::oram

#endif // SECUREDIMM_ORAM_RECURSIVE_ORAM_HH
