#include "oram/bucket_store.hh"

#include <cstring>
#include <memory>

#include "fault/fault_injector.hh"
#include "util/logging.hh"

namespace secdimm::oram
{

BucketStore::BucketStore(std::uint64_t num_buckets, unsigned z,
                         const crypto::Aes128Key &enc_key,
                         const crypto::Aes128Key &mac_key,
                         std::uint64_t nonce_salt)
    : z_(z),
      cipher_(enc_key),
      mac_(mac_key),
      nonceSalt_(nonce_salt),
      images_(num_buckets),
      counters_(num_buckets, 0),
      macs_(num_buckets, 0)
{
    // Initialize every bucket to an all-dummy image so the tree is
    // well-formed (and indistinguishable) from the first access.
    Bucket empty(z_);
    for (std::uint64_t seq = 0; seq < num_buckets; ++seq)
        writeBucket(seq, empty);
}

std::uint64_t
BucketStore::nonce(std::uint64_t seq) const
{
    // Mix the salt into the spatial nonce so two trees (or two Split
    // slices) never share a pad even under one key.
    return seq ^ (nonceSalt_ << 48) ^ (nonceSalt_ * 0x9e3779b97f4a7c15ULL);
}

void
BucketStore::writeBucket(std::uint64_t seq, const Bucket &bucket)
{
    SD_ASSERT(seq < images_.size());
    SD_ASSERT(bucket.z() == z_);
    if (observer_)
        observer_(true, seq);
    std::vector<std::uint8_t> image = bucket.toImage();
    const std::uint64_t ctr = ++counters_[seq];
    cipher_.transformBuffer(image.data(), image.size(), nonce(seq), ctr);
    macs_[seq] = mac_.tag(nonce(seq), ctr, image.data(), image.size());
    images_[seq] = std::move(image);
}

BucketReadResult
BucketStore::readBucket(std::uint64_t seq) const
{
    SD_ASSERT(seq < images_.size());
    if (observer_)
        observer_(false, seq);
    const std::uint64_t ctr = counters_[seq];
    std::vector<std::uint8_t> image = images_[seq];
    if (injector_ && injector_->rollDramBitFlip())
        injector_->corruptBuffer(image);
    const bool authentic = mac_.verify(nonce(seq), ctr, image.data(),
                                       image.size(), macs_[seq]);
    cipher_.transformBuffer(image.data(), image.size(), nonce(seq), ctr);
    BucketReadResult r{Bucket::fromImage(image, z_), authentic};
    return r;
}

void
BucketStore::readBuckets(const std::uint64_t *seqs, std::size_t n,
                         std::vector<BucketReadResult> &out) const
{
    out.clear();
    if (n == 0)
        return;
    const std::size_t img = Bucket::imageBytes(z_);
    arena_.resize(img * n);
    std::vector<crypto::PmmacItem> items(n);
    std::vector<crypto::Tag64> expected(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t seq = seqs[i];
        SD_ASSERT(seq < images_.size());
        if (observer_)
            observer_(false, seq);
        std::uint8_t *slot = arena_.data() + img * i;
        std::memcpy(slot, images_[seq].data(), img);
        if (injector_ && injector_->rollDramBitFlip())
            injector_->corruptBuffer(slot, img);
        items[i] = crypto::PmmacItem{nonce(seq), counters_[seq], slot,
                                     img};
        expected[i] = macs_[seq];
    }
    const std::unique_ptr<bool[]> ok(new bool[n]);
    mac_.verifyBatch(items.data(), n, expected.data(), ok.get());
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        std::uint8_t *slot = arena_.data() + img * i;
        cipher_.transformBuffer(slot, img, nonce(seqs[i]),
                                counters_[seqs[i]]);
        out.push_back(
            BucketReadResult{Bucket::fromImage(slot, img, z_), ok[i]});
    }
}

void
BucketStore::writeBuckets(const std::uint64_t *seqs,
                          const Bucket *buckets, std::size_t n)
{
    if (n == 0)
        return;
    const std::size_t img = Bucket::imageBytes(z_);
    arena_.resize(img * n);
    std::vector<crypto::PmmacItem> items(n);
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint64_t seq = seqs[i];
        SD_ASSERT(seq < images_.size());
        SD_ASSERT(buckets[i].z() == z_);
        if (observer_)
            observer_(true, seq);
        std::uint8_t *slot = arena_.data() + img * i;
        buckets[i].toImageInto(slot);
        const std::uint64_t ctr = ++counters_[seq];
        cipher_.transformBuffer(slot, img, nonce(seq), ctr);
        items[i] = crypto::PmmacItem{nonce(seq), ctr, slot, img};
    }
    std::vector<crypto::Tag64> tags(n);
    mac_.tagBatch(items.data(), n, tags.data());
    for (std::size_t i = 0; i < n; ++i) {
        macs_[seqs[i]] = tags[i];
        const std::uint8_t *slot = arena_.data() + img * i;
        images_[seqs[i]].assign(slot, slot + img);
    }
}

std::uint64_t
BucketStore::counter(std::uint64_t seq) const
{
    SD_ASSERT(seq < counters_.size());
    return counters_[seq];
}

void
BucketStore::tamperData(std::uint64_t seq, std::size_t byte_index)
{
    SD_ASSERT(seq < images_.size());
    images_[seq].at(byte_index) ^= 0x01;
}

void
BucketStore::replayFrom(std::uint64_t seq,
                        const std::vector<std::uint8_t> &old_image,
                        std::uint64_t old_counter, crypto::Tag64 old_mac)
{
    SD_ASSERT(seq < images_.size());
    images_[seq] = old_image;
    counters_[seq] = old_counter;
    macs_[seq] = old_mac;
}

const std::vector<std::uint8_t> &
BucketStore::rawImage(std::uint64_t seq) const
{
    SD_ASSERT(seq < images_.size());
    return images_[seq];
}

crypto::Tag64
BucketStore::rawMac(std::uint64_t seq) const
{
    SD_ASSERT(seq < macs_.size());
    return macs_[seq];
}

} // namespace secdimm::oram
