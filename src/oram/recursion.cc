#include "oram/recursion.hh"

namespace secdimm::oram
{

RecursionEngine::RecursionEngine(const RecursionParams &params)
    : params_(params), plb_(params.plbEntries, params.plbWays)
{
}

unsigned
RecursionEngine::opsForAccess(std::uint64_t block_index)
{
    ++stats_.requests;

    unsigned ops = params_.posmapLevels + 1; // Full miss: ORAM_n..ORAM_0.
    unsigned walked = params_.posmapLevels;
    for (unsigned level = 1; level <= params_.posmapLevels; ++level) {
        const std::uint64_t pm_block =
            block_index >> (params_.leavesPerBlockLog2 * level);
        if (plb_.lookup(Plb::makeKey(level, pm_block))) {
            // PLB holds the ORAM_level block: it already contains the
            // leaf for the ORAM_{level-1} access, so `level` ops
            // remain (ORAM_{level-1} .. ORAM_0).
            ops = level;
            walked = level;
            break;
        }
    }

    // The performed accesses fill the PLB with every walked block.
    for (unsigned level = 1; level <= walked; ++level) {
        const std::uint64_t pm_block =
            block_index >> (params_.leavesPerBlockLog2 * level);
        plb_.insert(Plb::makeKey(level, pm_block));
    }

    stats_.orams += ops;
    return ops;
}

} // namespace secdimm::oram
