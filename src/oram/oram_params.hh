/**
 * @file
 * Path ORAM configuration shared by the functional and timing layers.
 * Defaults follow the paper's Table II: Z = 4 blocks per bucket,
 * 64-byte blocks, 21-cycle encryption latency, 5 recursive PosMaps,
 * 200-entry stash.
 */

#ifndef SECUREDIMM_ORAM_ORAM_PARAMS_HH
#define SECUREDIMM_ORAM_ORAM_PARAMS_HH

#include <cstdint>

#include "util/bit_utils.hh"
#include "util/types.hh"

namespace secdimm::oram
{

/** Operation type of accessORAM. */
enum class OramOp
{
    Read,
    Write,
};

/** Static shape of one Path ORAM tree. */
struct OramParams
{
    /** Tree depth: leaves live at this level; levels 0..levels. */
    unsigned levels = 20;

    /** Blocks per bucket (Z). */
    unsigned bucketBlocks = 4;

    /**
     * Top tree levels held in on-controller SRAM (the paper's 64 KB
     * "ORAM cache" holds ~7 levels); those levels cost no DRAM
     * traffic.
     */
    unsigned cachedLevels = 0;

    /** 64-byte lines of metadata per bucket (tags/leaves/ctr/MAC). */
    unsigned metadataLines = 1;

    /** Controller encrypt/decrypt latency, memory cycles (Table II). */
    Cycles encLatency = 21;

    /** Stash capacity in blocks (Table: typically 200). */
    unsigned stashCapacity = 200;

    LeafId numLeaves() const { return LeafId{1} << levels; }

    std::uint64_t
    numBuckets() const
    {
        return (std::uint64_t{1} << (levels + 1)) - 1;
    }

    /** 64-byte lines occupied by one bucket (data + metadata). */
    unsigned linesPerBucket() const { return bucketBlocks + metadataLines; }

    /**
     * Usable data capacity in blocks; Path ORAM is typically run at
     * ~50% utilization of Z * leaves for a negligible stash-overflow
     * probability.
     */
    std::uint64_t
    capacityBlocks() const
    {
        return (static_cast<std::uint64_t>(bucketBlocks) * numLeaves()) /
               2;
    }

    /** Tree levels that actually touch DRAM. */
    unsigned
    dramLevels() const
    {
        return levels + 1 > cachedLevels ? levels + 1 - cachedLevels : 0;
    }

    /** DRAM lines moved by one accessORAM (read + write of a path). */
    std::uint64_t
    linesPerAccess() const
    {
        return 2ULL * linesPerBucket() * dramLevels();
    }
};

/**
 * Smallest tree depth whose ~50%-utilized capacity covers
 * @p blocks data blocks with @p z blocks per bucket.
 */
inline unsigned
levelsForCapacity(std::uint64_t blocks, unsigned z)
{
    unsigned levels = 2;
    while ((static_cast<std::uint64_t>(z) << levels) / 2 < blocks)
        ++levels;
    return levels;
}

/** Recursive PosMap configuration (Freecursive, Table II). */
struct RecursionParams
{
    /** Number of PosMap ORAMs kept in memory (ORAM_1 .. ORAM_n). */
    unsigned posmapLevels = 5;

    /** log2(leaf entries per 64-byte PosMap block): 16 entries. */
    unsigned leavesPerBlockLog2 = 4;

    /** PLB capacity in 64-byte entries (64 KB / 64 B). */
    unsigned plbEntries = 1024;

    /** PLB associativity. */
    unsigned plbWays = 8;
};

} // namespace secdimm::oram

#endif // SECUREDIMM_ORAM_ORAM_PARAMS_HH
