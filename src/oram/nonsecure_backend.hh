/**
 * @file
 * The non-secure baseline: LLC misses go straight to DRAM, one
 * 64-byte burst each.  This is the denominator of the paper's
 * Figure 6 slowdown and Figure 10 energy-overhead results.
 */

#ifndef SECUREDIMM_ORAM_NONSECURE_BACKEND_HH
#define SECUREDIMM_ORAM_NONSECURE_BACKEND_HH

#include <memory>

#include "dram/dram_system.hh"
#include "trace/memory_backend.hh"

namespace secdimm::oram
{

/** Plain DRAM memory backend. */
class NonSecureBackend : public MemoryBackend
{
  public:
    NonSecureBackend(const dram::TimingParams &timing,
                     const dram::Geometry &geom,
                     dram::MapPolicy map_policy =
                         dram::MapPolicy::RowRankBankCol);

    void setCompletionCallback(CompletionFn fn) override;
    bool canAccept() const override;
    void access(std::uint64_t id, Addr byte_addr, bool write,
                Tick now) override;
    Tick nextEventAt() const override;
    void advanceTo(Tick now) override;
    bool idle() const override;

    dram::DramSystem &dramSystem() { return sys_; }
    const dram::DramSystem &dramSystem() const { return sys_; }

  private:
    dram::DramSystem sys_;
    CompletionFn onComplete_;
};

} // namespace secdimm::oram

#endif // SECUREDIMM_ORAM_NONSECURE_BACKEND_HH
