/**
 * @file
 * Timing model of the Freecursive ORAM baseline [4]: a CPU-side ORAM
 * controller that turns each LLC miss into 1..n+1 accessORAM
 * operations (via the PLB), each reading and re-writing one tree path
 * over the CPU's DRAM channels.
 *
 * One accessORAM is in flight at a time (the backend is serial, as in
 * the paper); its write-back drains concurrently with the next
 * operation's path read under the FR-FCFS write watermark.
 */

#ifndef SECUREDIMM_ORAM_FREECURSIVE_BACKEND_HH
#define SECUREDIMM_ORAM_FREECURSIVE_BACKEND_HH

#include <array>
#include <deque>
#include <unordered_map>
#include <vector>

#include "dram/dram_system.hh"
#include "oram/oram_params.hh"
#include "oram/recursion.hh"
#include "oram/tree_layout.hh"
#include "trace/memory_backend.hh"
#include "util/rng.hh"

namespace secdimm::oram
{

/** Traffic counters for the off-chip access comparisons (Sec IV-B). */
struct OramTrafficStats
{
    std::uint64_t accessOrams = 0;    ///< Path operations executed.
    std::uint64_t channelLines = 0;   ///< 64B bursts on CPU channels.
    std::uint64_t requests = 0;       ///< LLC misses served.
};

/** Freecursive ORAM timing backend. */
class FreecursiveBackend : public MemoryBackend
{
  public:
    FreecursiveBackend(const OramParams &oram,
                       const RecursionParams &recursion,
                       const dram::TimingParams &timing,
                       const dram::Geometry &geom,
                       std::uint64_t seed = 1);

    void setCompletionCallback(CompletionFn fn) override;
    bool canAccept() const override;
    void access(std::uint64_t id, Addr byte_addr, bool write,
                Tick now) override;
    Tick nextEventAt() const override;
    void advanceTo(Tick now) override;
    bool idle() const override;

    /**
     * Co-resident non-secure traffic (Section III-A advantage 3: VMs
     * without privacy needs share the channel): a plain DRAM access
     * bypassing the ORAM, competing with ORAM lines in the same
     * queues.  Completions arrive on the separate plain callback.
     */
    void accessPlain(std::uint64_t id, Addr byte_addr, bool write,
                     Tick now);
    void setPlainCompletionCallback(CompletionFn fn);
    bool canAcceptPlain(Addr byte_addr, bool write) const;

    const OramParams &oramParams() const { return oram_; }
    const OramTrafficStats &traffic() const { return traffic_; }
    const RecursionEngine &recursion() const { return recursion_; }
    dram::DramSystem &dramSystem() { return sys_; }
    const dram::DramSystem &dramSystem() const { return sys_; }

  private:
    struct Job
    {
        std::uint64_t id;
        unsigned opsLeft;
        Tick readyAt;
        bool opIssued = false;
    };

    struct StagedLine
    {
        Addr line;
        Tick at;
        std::uint64_t kind;
    };

    void onDramDone(const dram::DramCompletion &c);
    void startNextOp(Tick now);
    void respondOp(Tick avail);
    void finishOpReads(Tick reads_done);
    void pump();

    Addr lineToDramBlock(Addr line) const;

    OramParams oram_;
    TreeLayout layout_;
    RecursionEngine recursion_;
    dram::DramSystem sys_;
    Rng rng_;
    CompletionFn onComplete_;
    CompletionFn onPlainComplete_;
    /** DRAM-request id -> caller id for in-flight plain accesses. */
    std::unordered_map<std::uint64_t, std::uint64_t> plainIds_;
    std::uint64_t nextPlainSeq_ = 0;

    std::deque<Job> jobs_;
    static constexpr std::size_t jobCapacity_ = 8;

    bool opInFlight_ = false;
    bool responseSent_ = false;
    Tick opStartAt_ = 0;
    LeafId opLeaf_ = 0;
    std::uint64_t opJobId_ = 0;
    Cycles blockFetchCycles_ = 17;
    /**
     * Lines awaiting DRAM queue space, separated per channel and
     * read/write so pump() only touches deques that can drain
     * (a full-queue head blocks only its own deque).
     */
    std::vector<std::array<std::deque<StagedLine>, 2>> stagedPerCh_;
    std::size_t stagedTotal_ = 0;
    void stageLine(Addr line, Tick at, std::uint64_t kind);
    std::uint64_t outstandingReads_ = 0;
    std::uint64_t outstandingMetaReads_ = 0;
    std::size_t stagedMetaReads_ = 0;
    std::size_t stagedDataReads_ = 0;
    std::uint64_t outstandingWrites_ = 0;
    Tick lastReadDone_ = 0;
    Tick lastMetaDone_ = 0;

    OramTrafficStats traffic_;
};

} // namespace secdimm::oram

#endif // SECUREDIMM_ORAM_FREECURSIVE_BACKEND_HH
