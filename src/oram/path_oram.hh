/**
 * @file
 * Functional Path ORAM (Stefanov et al. [11]) with real encrypted
 * storage: the authoritative implementation of accessORAM that the
 * SDIMM protocols decompose.
 *
 * Integrity: every bucket is PMMAC-tagged; the controller mirrors the
 * expected freshness counter for every bucket (standing in for the
 * PMMAC counter chain of Freecursive [4]), so both tampering and
 * rollback/replay are detected.
 */

#ifndef SECUREDIMM_ORAM_PATH_ORAM_HH
#define SECUREDIMM_ORAM_PATH_ORAM_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "oram/bucket_store.hh"
#include "oram/oram_params.hh"
#include "oram/stash.hh"
#include "oram/tree_layout.hh"
#include "util/rng.hh"

namespace secdimm::oram
{

/** Statistics of one PathOram instance. */
struct PathOramStats
{
    std::uint64_t accesses = 0;
    std::uint64_t dummyAccesses = 0;   ///< Background evictions.
    std::uint64_t integrityFailures = 0;
    std::size_t maxStashSize = 0;
};

/** Functional single-tree Path ORAM. */
class PathOram
{
  public:
    PathOram(const OramParams &params, const crypto::Aes128Key &enc_key,
             const crypto::Aes128Key &mac_key, std::uint64_t seed,
             std::uint64_t store_salt = 0);

    /**
     * The accessORAM(a, op, d') interface of Section II-C.
     *
     * @param addr   block address in [0, capacityBlocks)
     * @param op     read or write
     * @param new_data payload for writes (ignored for reads)
     * @return the block's (pre-write) content
     */
    BlockData access(Addr addr, OramOp op,
                     const BlockData *new_data = nullptr);

    /**
     * accessORAM with an externally supplied leaf, for distributed
     * frontends (the SDIMM Independent protocol keeps the PosMap at
     * the CPU and ships leaves inside the ACCESS message).
     *
     * @param addr        block address (global; PosMap not consulted)
     * @param old_leaf    current leaf within THIS tree
     * @param new_leaf    new local leaf if the block stays in this
     *                    tree; invalidLeaf if it is being removed
     *                    (remapped to another SDIMM)
     * @param op / new_data as access()
     * @return the block's pre-write content
     */
    BlockData accessExplicit(Addr addr, LeafId old_leaf, LeafId new_leaf,
                             OramOp op,
                             const BlockData *new_data = nullptr);

    /**
     * Read-modify-write accessORAM with an explicit leaf: fetches the
     * block, lets @p mutate edit it in place, and keeps it under
     * @p new_leaf -- one path access, used by the recursive PosMap
     * ORAMs to swap a child leaf inside a PosMap block.
     *
     * @return the block's PRE-mutation content
     */
    BlockData accessMutate(Addr addr, LeafId old_leaf, LeafId new_leaf,
                           const std::function<void(BlockData &)> &mutate);

    /**
     * Service of an APPEND: adopt a block arriving from another
     * SDIMM into the local stash (it settles into the tree on later
     * path writes).  Returns false if the stash is full.
     */
    bool adoptBlock(Addr addr, LeafId local_leaf, const BlockData &data);

    /**
     * Dummy access draining the stash (background eviction, Ren et
     * al. [10]): reads and rewrites a random path without touching
     * any block.
     */
    void backgroundEvict();

    /** Current leaf of a block (tests; a real controller hides this). */
    LeafId leafOf(Addr addr) const;

    /** Sequence of leaves touched, for obliviousness tests. */
    const std::vector<LeafId> &leafTrace() const { return leafTrace_; }
    void clearLeafTrace() { leafTrace_.clear(); }

    const OramParams &params() const { return params_; }
    const PathOramStats &stats() const { return stats_; }
    std::size_t stashSize() const { return stash_.size(); }

    /** Underlying untrusted store (tamper-injection in tests). */
    BucketStore &store() { return store_; }
    const BucketStore &store() const { return store_; }

    /** Physical tree layout (verify audits map seq <-> position). */
    const TreeLayout &layout() const { return layout_; }

    /** Controller stash (verify audits walk its entries). */
    const Stash &stash() const { return stash_; }

    /** True while every MAC/counter check has passed. */
    bool integrityOk() const { return stats_.integrityFailures == 0; }

    /**
     * Arm fault injection + bounded detect-and-retry (nullptr
     * disarms).  With an injector, a MAC/counter mismatch in
     * readPath() becomes a typed FaultEvent and the bucket read is
     * retried up to the plan's budget before it counts as an
     * integrity failure; without one, behavior is exactly the
     * pre-fault-subsystem fail-stop accounting.  Not owned; also
     * forwarded to the underlying BucketStore.
     */
    void setFaultInjector(fault::FaultInjector *inj)
    {
        injector_ = inj;
        store_.setFaultInjector(inj);
    }

    /**
     * Export access/stash statistics into @p m under @p prefix (see
     * docs/METRICS.md "oram.*").
     */
    void exportMetrics(util::MetricsRegistry &m,
                       const std::string &prefix) const;

    /** Fold this tree's crypto work into @p t (crypto.* metrics). */
    void collectCrypto(crypto::CryptoTotals &t) const
    {
        store_.collectCrypto(t);
    }

  private:
    /**
     * Read one path into the stash; verifies integrity.  All buckets
     * of the path go through BucketStore::readBuckets (one batched
     * MAC pass); a bucket that fails falls back to per-bucket
     * detect-and-retry so the fault ledger semantics are unchanged.
     */
    void readPath(LeafId leaf);

    /** Greedily write the stash back onto one path (batched MACs). */
    void writePath(LeafId leaf);

    OramParams params_;
    TreeLayout layout_;
    BucketStore store_;
    Stash stash_;
    Rng rng_;

    std::vector<LeafId> posMap_;
    /** Controller-side mirror of bucket counters (replay detection). */
    std::vector<std::uint64_t> expectedCounter_;

    std::vector<LeafId> leafTrace_;
    PathOramStats stats_;
    fault::FaultInjector *injector_ = nullptr;

    /** Per-path scratch reused across accesses (no steady-state
     *  allocation on the hot path). */
    std::vector<std::uint64_t> pathSeqs_;
    std::vector<BucketReadResult> pathRead_;
    std::vector<Bucket> pathBuckets_;
};

} // namespace secdimm::oram

#endif // SECUREDIMM_ORAM_PATH_ORAM_HH
