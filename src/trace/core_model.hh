/**
 * @file
 * Trace-driven core model matching the paper's Table II: a single
 * 1.6 GHz core whose 128-entry ROB limits how many outstanding misses
 * overlap, above a shared L2 (the LLC) and a pluggable MemoryBackend.
 *
 * Time is measured in memory-controller cycles (800 MHz); the core
 * retires two instructions per memory cycle.
 */

#ifndef SECUREDIMM_TRACE_CORE_MODEL_HH
#define SECUREDIMM_TRACE_CORE_MODEL_HH

#include <cstdint>
#include <deque>
#include <unordered_map>

#include "trace/cache.hh"
#include "trace/memory_backend.hh"
#include "trace/record_source.hh"
#include "trace/workload.hh"

namespace secdimm::trace
{

/** Core configuration (Table II defaults). */
struct CoreParams
{
    unsigned robEntries = 128;
    double instrPerMemCycle = 2.0; ///< 1.6 GHz core / 0.8 GHz memory.
    Cycles llcLatency = 5;         ///< 10 core cycles = 5 memory cycles.
};

/** Result of one simulated run. */
struct CoreRunResult
{
    Tick cycles = 0;              ///< Memory cycles for measured phase.
    std::uint64_t instructions = 0;
    std::uint64_t l1Misses = 0;   ///< Trace records consumed (measured).
    std::uint64_t llcMisses = 0;
    std::uint64_t llcWritebacks = 0;

    double
    ipc() const
    {
        return cycles ? static_cast<double>(instructions) / cycles : 0.0;
    }
};

/**
 * Replays an L1-miss trace through the LLC into a memory backend,
 * modeling ROB-limited miss overlap and in-order retirement.
 */
class CoreModel
{
  public:
    CoreModel(const CoreParams &params, CacheModel &llc,
              MemoryBackend &mem);

    /**
     * Warm the LLC with @p warmup_records (no timing), then simulate
     * @p measure_records cycle-accurately.  Matches the paper's
     * methodology of fast-forwarding 1M accesses before measuring.
     * Any RecordSource works: the synthetic SPEC-like generators or
     * application streams (app/kv_workload.hh).
     */
    CoreRunResult run(RecordSource &gen, std::uint64_t warmup_records,
                      std::uint64_t measure_records);

  private:
    struct RobEntry
    {
        std::uint64_t instrIndex;
        std::uint64_t accessId; ///< 0 when the entry is already done.
        Tick doneAt;
    };

    /** Drive the backend until access @p id completes. */
    Tick waitForCompletion(std::uint64_t id);

    /** Drive the backend until it can accept a new access. */
    void waitForAcceptance();

    CoreParams params_;
    CacheModel &llc_;
    MemoryBackend &mem_;

    std::deque<RobEntry> rob_;
    std::unordered_map<std::uint64_t, Tick> completed_;
    std::uint64_t nextId_ = 1;
};

} // namespace secdimm::trace

#endif // SECUREDIMM_TRACE_CORE_MODEL_HH
