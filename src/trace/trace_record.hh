/**
 * @file
 * One record of an L1-miss trace: how many instructions executed since
 * the previous memory reference, the referenced address, and whether
 * it is a store.  The paper captures such traces with Simics; we
 * synthesize them (see workload.hh).
 */

#ifndef SECUREDIMM_TRACE_TRACE_RECORD_HH
#define SECUREDIMM_TRACE_TRACE_RECORD_HH

#include <cstdint>

#include "util/types.hh"

namespace secdimm::trace
{

/** One L1 miss event. */
struct TraceRecord
{
    std::uint32_t instGap = 0; ///< Instructions since previous record.
    Addr addr = 0;             ///< Byte address touched.
    bool write = false;
};

} // namespace secdimm::trace

#endif // SECUREDIMM_TRACE_TRACE_RECORD_HH
