/**
 * @file
 * Set-associative write-back/write-allocate cache model with true-LRU
 * replacement -- the shared L2/LLC of the paper's Table II (2 MB,
 * 64-byte lines, 8-way, 10-cycle).
 */

#ifndef SECUREDIMM_TRACE_CACHE_HH
#define SECUREDIMM_TRACE_CACHE_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace secdimm::trace
{

/** Outcome of one cache access. */
struct CacheAccessResult
{
    bool hit = false;
    bool writeback = false; ///< A dirty victim was evicted.
    Addr victimAddr = 0;    ///< Byte address of the dirty victim.
};

/** Aggregate cache statistics. */
struct CacheStats
{
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t writebacks = 0;

    double
    missRate() const
    {
        const std::uint64_t total = hits + misses;
        return total ? static_cast<double>(misses) / total : 0.0;
    }
};

/** LRU set-associative cache. */
class CacheModel
{
  public:
    CacheModel(std::uint64_t size_bytes, unsigned ways,
               unsigned line_bytes = blockBytes);

    /** Touch @p addr; allocate on miss; mark dirty on write. */
    CacheAccessResult access(Addr addr, bool write);

    /** Drop all contents (keeps statistics). */
    void flush();

    const CacheStats &stats() const { return stats_; }
    void resetStats() { stats_ = CacheStats{}; }

    unsigned ways() const { return ways_; }
    std::uint64_t sets() const { return sets_; }

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        Addr tag = 0;
        std::uint64_t lastUse = 0;
    };

    unsigned ways_;
    unsigned lineBytes_;
    std::uint64_t sets_;
    std::vector<Line> lines_; ///< [set * ways + way].
    std::uint64_t useClock_ = 0;
    CacheStats stats_;
};

} // namespace secdimm::trace

#endif // SECUREDIMM_TRACE_CACHE_HH
