/**
 * @file
 * Reading and writing L1-miss traces.  The text form ("gap addr r/w"
 * per line) is diff-friendly; the binary form ("SDTR" magic + packed
 * records) is compact for long captures.
 */

#ifndef SECUREDIMM_TRACE_TRACE_IO_HH
#define SECUREDIMM_TRACE_TRACE_IO_HH

#include <string>
#include <vector>

#include "trace/trace_record.hh"

namespace secdimm::trace
{

/** Write @p records as text; returns false on I/O failure. */
bool writeTraceText(const std::string &path,
                    const std::vector<TraceRecord> &records);

/** Read a text trace; returns false on I/O or parse failure. */
bool readTraceText(const std::string &path,
                   std::vector<TraceRecord> &records);

/** Write @p records in the binary "SDTR" format. */
bool writeTraceBinary(const std::string &path,
                      const std::vector<TraceRecord> &records);

/** Read a binary trace; validates the magic and length. */
bool readTraceBinary(const std::string &path,
                     std::vector<TraceRecord> &records);

} // namespace secdimm::trace

#endif // SECUREDIMM_TRACE_TRACE_IO_HH
