#include "trace/cache.hh"

#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace secdimm::trace
{

CacheModel::CacheModel(std::uint64_t size_bytes, unsigned ways,
                       unsigned line_bytes)
    : ways_(ways), lineBytes_(line_bytes)
{
    SD_ASSERT(ways >= 1);
    SD_ASSERT(isPowerOfTwo(line_bytes));
    sets_ = size_bytes / (static_cast<std::uint64_t>(ways) * line_bytes);
    SD_ASSERT(sets_ >= 1);
    SD_ASSERT(isPowerOfTwo(sets_));
    lines_.resize(sets_ * ways_);
}

CacheAccessResult
CacheModel::access(Addr addr, bool write)
{
    CacheAccessResult result;
    const Addr line_addr = addr / lineBytes_;
    const std::uint64_t set = line_addr & (sets_ - 1);
    const Addr tag = line_addr >> floorLog2(sets_);
    Line *base = &lines_[set * ways_];
    ++useClock_;

    // Hit path.
    for (unsigned w = 0; w < ways_; ++w) {
        Line &l = base[w];
        if (l.valid && l.tag == tag) {
            l.lastUse = useClock_;
            l.dirty = l.dirty || write;
            ++stats_.hits;
            result.hit = true;
            return result;
        }
    }

    // Miss: find victim (invalid first, else LRU).
    ++stats_.misses;
    unsigned victim = 0;
    std::uint64_t oldest = ~std::uint64_t{0};
    for (unsigned w = 0; w < ways_; ++w) {
        Line &l = base[w];
        if (!l.valid) {
            victim = w;
            oldest = 0;
            break;
        }
        if (l.lastUse < oldest) {
            oldest = l.lastUse;
            victim = w;
        }
    }

    Line &v = base[victim];
    if (v.valid && v.dirty) {
        result.writeback = true;
        result.victimAddr =
            ((v.tag << floorLog2(sets_)) | set) * lineBytes_;
        ++stats_.writebacks;
    }
    v.valid = true;
    v.dirty = write;
    v.tag = tag;
    v.lastUse = useClock_;
    return result;
}

void
CacheModel::flush()
{
    for (auto &l : lines_)
        l = Line{};
}

} // namespace secdimm::trace
