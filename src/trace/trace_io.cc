#include "trace/trace_io.hh"

#include <cstring>
#include <fstream>
#include <sstream>

namespace secdimm::trace
{

namespace
{

constexpr char traceMagic[4] = {'S', 'D', 'T', 'R'};

#pragma pack(push, 1)
struct PackedRecord
{
    std::uint32_t instGap;
    std::uint64_t addr;
    std::uint8_t write;
};
#pragma pack(pop)

} // namespace

bool
writeTraceText(const std::string &path,
               const std::vector<TraceRecord> &records)
{
    std::ofstream out(path);
    if (!out)
        return false;
    for (const auto &r : records) {
        out << r.instGap << " 0x" << std::hex << r.addr << std::dec
            << " " << (r.write ? "W" : "R") << "\n";
    }
    return static_cast<bool>(out);
}

bool
readTraceText(const std::string &path, std::vector<TraceRecord> &records)
{
    std::ifstream in(path);
    if (!in)
        return false;
    records.clear();
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream is(line);
        TraceRecord r;
        std::string rw;
        if (!(is >> r.instGap >> std::hex >> r.addr >> std::dec >> rw))
            return false;
        if (rw != "R" && rw != "W")
            return false;
        r.write = rw == "W";
        records.push_back(r);
    }
    return true;
}

bool
writeTraceBinary(const std::string &path,
                 const std::vector<TraceRecord> &records)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out.write(traceMagic, sizeof(traceMagic));
    const std::uint64_t count = records.size();
    out.write(reinterpret_cast<const char *>(&count), sizeof(count));
    for (const auto &r : records) {
        PackedRecord p{r.instGap, r.addr,
                       static_cast<std::uint8_t>(r.write ? 1 : 0)};
        out.write(reinterpret_cast<const char *>(&p), sizeof(p));
    }
    return static_cast<bool>(out);
}

bool
readTraceBinary(const std::string &path,
                std::vector<TraceRecord> &records)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    char magic[4];
    in.read(magic, sizeof(magic));
    if (!in || std::memcmp(magic, traceMagic, sizeof(magic)) != 0)
        return false;
    std::uint64_t count = 0;
    in.read(reinterpret_cast<char *>(&count), sizeof(count));
    if (!in)
        return false;
    records.clear();
    records.reserve(count);
    for (std::uint64_t i = 0; i < count; ++i) {
        PackedRecord p;
        in.read(reinterpret_cast<char *>(&p), sizeof(p));
        if (!in)
            return false;
        records.push_back({p.instGap, p.addr, p.write != 0});
    }
    return true;
}

} // namespace secdimm::trace
