#include "trace/workload.hh"

#include "util/logging.hh"

namespace secdimm::trace
{

TraceGenerator::TraceGenerator(const WorkloadProfile &profile,
                               std::uint64_t seed)
    : profile_(profile), rng_(seed)
{
    SD_ASSERT(profile_.footprintBytes >= blockBytes);
    SD_ASSERT(profile_.hotBytes >= blockBytes);
    SD_ASSERT(profile_.hotBytes <= profile_.footprintBytes);
    coldAddr_ = rng_.nextBelow(profile_.footprintBytes / blockBytes) *
                blockBytes;
    hotAddr_ = rng_.nextBelow(profile_.hotBytes / blockBytes) *
               blockBytes;
}

TraceRecord
TraceGenerator::next()
{
    TraceRecord r;

    if (burstLeft_ > 0) {
        --burstLeft_;
        r.instGap = profile_.burstInstGap;
    } else {
        // Start a new burst: its length models how many independent
        // misses the ROB can expose at once.
        burstLeft_ = rng_.nextGeometric(profile_.burstMean);
        SD_ASSERT(burstLeft_ >= 1);
        --burstLeft_;
        r.instGap = static_cast<std::uint32_t>(
            rng_.nextGeometric(profile_.meanInstGap));
    }

    // Hot (LLC-resident) vs cold (memory-bound) reference; each
    // region keeps its own cursor so sequentiality applies within it.
    const bool hot = rng_.nextBool(profile_.hotFraction);
    const std::uint64_t region_bytes =
        hot ? profile_.hotBytes : profile_.footprintBytes;
    Addr &cursor = hot ? hotAddr_ : coldAddr_;
    if (rng_.nextBool(profile_.seqProb)) {
        cursor = (cursor + blockBytes) % region_bytes;
    } else {
        cursor = rng_.nextBelow(region_bytes / blockBytes) * blockBytes;
    }
    // The hot region aliases the bottom of the footprint, which is
    // what real programs' reused structures do.
    r.addr = cursor;
    r.write = rng_.nextBool(profile_.writeFraction);
    return r;
}

const std::vector<WorkloadProfile> &
spec2006Profiles()
{
    // Knob values are calibrated so the simulated slowdowns land in
    // the band the paper reports (Freecursive ~9x over non-secure on
    // one channel); relative characters follow the literature on
    // SPEC2006 memory behaviour: mcf/omnetpp pointer-heavy,
    // libquantum/lbm/bwaves streaming, GemsFDTD latency-bound with
    // near-serial dependent misses, gromacs/omnetpp exposing the most
    // MLP (the paper notes they favor the Independent protocol).
    //
    // Columns: name, meanInstGap, burstMean, burstInstGap,
    // writeFraction, seqProb, footprintBytes, hotFraction, hotBytes.
    static const std::vector<WorkloadProfile> profiles = {
        {"mcf",   950.0, 2.5, 4, 0.25, 0.10, 512ULL << 20,
         0.35, 1ULL << 20},
        {"omnetpp",  1200.0, 6.0, 4, 0.35, 0.20, 256ULL << 20,
         0.50, 3ULL << 19},
        {"gromacs",  2250.0, 9.0, 4, 0.30, 0.50, 128ULL << 20,
         0.60, 3ULL << 19},
        {"GemsFDTD",  1050.0, 1.1, 4, 0.30, 0.60, 512ULL << 20,
         0.40, 1ULL << 20},
        {"libquantum",  1050.0, 5.0, 4, 0.25, 0.90, 64ULL << 20,
         0.50, 1ULL << 20},
        {"lbm",  1200.0, 5.0, 4, 0.45, 0.80, 512ULL << 20,
         0.40, 1ULL << 20},
        {"milc",  1200.0, 3.0, 4, 0.30, 0.40, 512ULL << 20,
         0.45, 1ULL << 20},
        {"soplex",  1100.0, 2.5, 4, 0.20, 0.30, 256ULL << 20,
         0.50, 1ULL << 20},
        {"leslie3d",  1300.0, 4.0, 4, 0.35, 0.70, 256ULL << 20,
         0.50, 1ULL << 20},
        {"bwaves",  1100.0, 5.0, 4, 0.30, 0.85, 512ULL << 20,
         0.45, 1ULL << 20},
    };
    return profiles;
}

const WorkloadProfile *
findProfile(const std::string &name)
{
    for (const auto &p : spec2006Profiles()) {
        if (p.name == name)
            return &p;
    }
    return nullptr;
}

} // namespace secdimm::trace
