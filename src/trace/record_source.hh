/**
 * @file
 * Abstract stream of trace records.  The core model replays ANY
 * record source -- the synthetic SPEC-like generators (workload.hh)
 * or application-level streams such as the KV workload adapter
 * (app/kv_workload.hh) -- so timing results can be produced for real
 * request mixes, not just the uniform synthetic profiles.
 */

#ifndef SECUREDIMM_TRACE_RECORD_SOURCE_HH
#define SECUREDIMM_TRACE_RECORD_SOURCE_HH

#include "trace/trace_record.hh"

namespace secdimm::trace
{

/** Pull-based producer of L1-miss events. */
class RecordSource
{
  public:
    virtual ~RecordSource() = default;

    /** Produce the next L1 miss event. */
    virtual TraceRecord next() = 0;
};

} // namespace secdimm::trace

#endif // SECUREDIMM_TRACE_RECORD_SOURCE_HH
