/**
 * @file
 * The interface between the CPU/cache model and a memory system.
 * Implementations: the non-secure DRAM baseline, Freecursive ORAM, and
 * the SDIMM Independent / Split / Indep-Split protocols.
 *
 * The contract is event-driven: access() hands over one LLC miss;
 * the backend later reports the finish tick through the completion
 * callback while the caller drives time forward with advanceTo().
 */

#ifndef SECUREDIMM_TRACE_MEMORY_BACKEND_HH
#define SECUREDIMM_TRACE_MEMORY_BACKEND_HH

#include <functional>

#include "util/types.hh"

namespace secdimm
{

/** Abstract timing model of a memory system under an LLC. */
class MemoryBackend
{
  public:
    /** Called once per completed access with (id, finish tick). */
    using CompletionFn = std::function<void(std::uint64_t, Tick)>;

    virtual ~MemoryBackend() = default;

    /** Register the completion consumer (single consumer). */
    virtual void setCompletionCallback(CompletionFn fn) = 0;

    /** Whether a new access can be admitted right now. */
    virtual bool canAccept() const = 0;

    /**
     * Admit one 64-byte access.
     * @param id       caller-chosen tag echoed at completion
     * @param byteAddr physical byte address (block aligned or not)
     * @param write    store vs load
     * @param now      current simulation tick
     */
    virtual void access(std::uint64_t id, Addr byteAddr, bool write,
                        Tick now) = 0;

    /** Earliest tick at which internal state can change. */
    virtual Tick nextEventAt() const = 0;

    /** Advance internal machinery; may fire completions. */
    virtual void advanceTo(Tick now) = 0;

    /** No queued or in-flight work. */
    virtual bool idle() const = 0;
};

} // namespace secdimm

#endif // SECUREDIMM_TRACE_MEMORY_BACKEND_HH
