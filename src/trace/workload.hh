/**
 * @file
 * Synthetic L1-miss trace generators standing in for the paper's
 * Simics-captured SPEC CPU2006 traces (see DESIGN.md substitutions).
 *
 * Each profile fixes the trace properties the paper's results actually
 * depend on: miss intensity (instructions between misses), burstiness
 * (memory-level parallelism available inside the 128-entry ROB),
 * read/write mix, spatial locality (PLB and row-buffer behaviour), and
 * footprint (LLC behaviour).  gromacs/omnetpp are configured with high
 * MLP (they favor the Independent protocol in the paper) and GemsFDTD
 * with near-serial dependent misses (it favors Split).
 */

#ifndef SECUREDIMM_TRACE_WORKLOAD_HH
#define SECUREDIMM_TRACE_WORKLOAD_HH

#include <string>
#include <vector>

#include "trace/record_source.hh"
#include "trace/trace_record.hh"
#include "util/rng.hh"

namespace secdimm::trace
{

/** Tunable knobs of one synthetic benchmark. */
struct WorkloadProfile
{
    std::string name;
    double meanInstGap = 100.0;  ///< Mean instructions between misses.
    double burstMean = 2.0;      ///< Mean misses per dependence-free burst.
    std::uint32_t burstInstGap = 4; ///< Gap between misses inside a burst.
    double writeFraction = 0.3;
    double seqProb = 0.5;        ///< P(next line = previous + 64B).
    std::uint64_t footprintBytes = 256ULL << 20;

    /**
     * Fraction of references landing in a small hot region that fits
     * the LLC; models the temporal reuse real programs exhibit and
     * sets the LLC hit rate.
     */
    double hotFraction = 0.45;
    std::uint64_t hotBytes = 1ULL << 20;
};

/** Stream of synthetic TraceRecords for one profile. */
class TraceGenerator : public RecordSource
{
  public:
    TraceGenerator(const WorkloadProfile &profile, std::uint64_t seed);

    /** Produce the next L1 miss event. */
    TraceRecord next() override;

    const WorkloadProfile &profile() const { return profile_; }

  private:
    WorkloadProfile profile_;
    Rng rng_;
    Addr coldAddr_ = 0; ///< Cursor in the large cold region.
    Addr hotAddr_ = 0;  ///< Cursor in the LLC-resident hot region.
    std::uint64_t burstLeft_ = 0;
};

/**
 * The ten memory-intensive SPEC CPU2006 profiles evaluated in the
 * paper's Section IV.
 */
const std::vector<WorkloadProfile> &spec2006Profiles();

/** Lookup by name; nullptr when unknown. */
const WorkloadProfile *findProfile(const std::string &name);

} // namespace secdimm::trace

#endif // SECUREDIMM_TRACE_WORKLOAD_HH
