#include "trace/core_model.hh"

#include <algorithm>
#include <cmath>

#include "util/logging.hh"

namespace secdimm::trace
{

CoreModel::CoreModel(const CoreParams &params, CacheModel &llc,
                     MemoryBackend &mem)
    : params_(params), llc_(llc), mem_(mem)
{
    mem_.setCompletionCallback([this](std::uint64_t id, Tick done) {
        completed_[id] = done;
    });
}

Tick
CoreModel::waitForCompletion(std::uint64_t id)
{
    for (;;) {
        auto it = completed_.find(id);
        if (it != completed_.end()) {
            const Tick done = it->second;
            completed_.erase(it);
            return done;
        }
        const Tick next = mem_.nextEventAt();
        SD_ASSERT(next != tickNever);
        mem_.advanceTo(next);
    }
}

void
CoreModel::waitForAcceptance()
{
    while (!mem_.canAccept()) {
        const Tick next = mem_.nextEventAt();
        SD_ASSERT(next != tickNever);
        mem_.advanceTo(next);
    }
}

CoreRunResult
CoreModel::run(RecordSource &gen, std::uint64_t warmup_records,
               std::uint64_t measure_records)
{
    // Warm-up: touch the LLC functionally, no timing.
    for (std::uint64_t i = 0; i < warmup_records; ++i) {
        const TraceRecord r = gen.next();
        llc_.access(r.addr, r.write);
    }
    llc_.resetStats();

    CoreRunResult result;
    double fetch_time = 0.0; ///< Fractional memory cycles.
    std::uint64_t instr_index = 0;

    rob_.clear();
    completed_.clear();

    for (std::uint64_t i = 0; i < measure_records; ++i) {
        const TraceRecord r = gen.next();
        instr_index += r.instGap;
        result.instructions += r.instGap;
        ++result.l1Misses;

        fetch_time +=
            static_cast<double>(r.instGap) / params_.instrPerMemCycle;

        // In-order retirement: pop entries that completed before the
        // fetch frontier; stall on the ROB head when the window fills.
        auto resolve_front = [&]() {
            RobEntry &front = rob_.front();
            if (front.accessId != 0) {
                front.doneAt = waitForCompletion(front.accessId);
                front.accessId = 0;
            }
        };
        while (!rob_.empty()) {
            const bool window_full =
                instr_index - rob_.front().instrIndex >=
                params_.robEntries;
            if (window_full) {
                resolve_front();
                fetch_time = std::max(
                    fetch_time,
                    static_cast<double>(rob_.front().doneAt));
                rob_.pop_front();
                continue;
            }
            // Retire opportunistically when completion is known and
            // already in the past.
            RobEntry &front = rob_.front();
            if (front.accessId != 0) {
                auto it = completed_.find(front.accessId);
                if (it == completed_.end())
                    break;
                front.doneAt = it->second;
                completed_.erase(it);
                front.accessId = 0;
            }
            if (static_cast<double>(front.doneAt) <= fetch_time)
                rob_.pop_front();
            else
                break;
        }

        const Tick now = static_cast<Tick>(std::ceil(fetch_time));
        const CacheAccessResult c = llc_.access(r.addr, r.write);

        RobEntry entry;
        entry.instrIndex = instr_index;
        if (c.hit) {
            entry.accessId = 0;
            entry.doneAt = now + params_.llcLatency;
        } else {
            ++result.llcMisses;
            waitForAcceptance();
            entry.accessId = nextId_++;
            mem_.access(entry.accessId, r.addr, r.write,
                        now + params_.llcLatency);
        }
        rob_.push_back(entry);

        // Dirty victim: fire-and-forget write to memory.
        if (c.writeback) {
            ++result.llcWritebacks;
            waitForAcceptance();
            mem_.access(nextId_++, c.victimAddr, true,
                        now + params_.llcLatency);
            // The writeback is not tracked in the ROB; drop its
            // completion record when it arrives.
        }
    }

    // Drain: every tracked access must complete.
    Tick end = static_cast<Tick>(std::ceil(fetch_time));
    while (!rob_.empty()) {
        RobEntry &front = rob_.front();
        if (front.accessId != 0) {
            front.doneAt = waitForCompletion(front.accessId);
            front.accessId = 0;
        }
        end = std::max(end, front.doneAt);
        rob_.pop_front();
    }
    while (!mem_.idle()) {
        const Tick next = mem_.nextEventAt();
        SD_ASSERT(next != tickNever);
        mem_.advanceTo(next);
    }

    result.cycles = end;
    completed_.clear();
    return result;
}

} // namespace secdimm::trace
