#include "app/kv_workload.hh"

#include <cctype>
#include <cmath>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>

#include "util/metrics.hh" // jsonQuote / jsonNumber

namespace secdimm::app
{

namespace
{

/** splitmix64 finalizer: the rank/key scrambler. */
std::uint64_t
mix64(std::uint64_t x)
{
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

std::uint64_t
fnv1a(const std::string &s)
{
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const char c : s) {
        h ^= static_cast<std::uint8_t>(c);
        h *= 0x100000001b3ULL;
    }
    return h;
}

/* ------------------------------------------------------------------ */
/* Tiny JSON value + recursive-descent parser, the fault_plan_io.cc    */
/* idiom: self-contained because the repo has no generic JSON          */
/* dependency.  Only what a KvWorkloadSpec needs.                      */
/* ------------------------------------------------------------------ */

struct JsonValue {
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    std::optional<JsonValue> parse(std::string *error)
    {
        JsonValue v;
        if (!value(v) || (skipWs(), pos_ != s_.size())) {
            if (error) {
                std::ostringstream os;
                os << "JSON parse error near offset " << pos_;
                *error = os.str();
            }
            return std::nullopt;
        }
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool literal(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool value(JsonValue &out)
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"')
            return string(out);
        if (c == 't' || c == 'f') {
            out.type = JsonValue::Type::Bool;
            out.boolean = c == 't';
            return literal(c == 't' ? "true" : "false");
        }
        if (c == 'n') {
            out.type = JsonValue::Type::Null;
            return literal("null");
        }
        return number(out);
    }

    bool string(JsonValue &out)
    {
        if (s_[pos_] != '"')
            return false;
        ++pos_;
        out.type = JsonValue::Type::String;
        out.str.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_++];
                switch (e) {
                case '"': c = '"'; break;
                case '\\': c = '\\'; break;
                case '/': c = '/'; break;
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'r': c = '\r'; break;
                default: return false;
                }
            }
            out.str.push_back(c);
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        bool any = false;
        auto digits = [&] {
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                any = true;
            }
        };
        digits();
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            digits();
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
                ++pos_;
            digits();
        }
        if (!any)
            return false;
        out.type = JsonValue::Type::Number;
        out.number = std::stod(s_.substr(start, pos_ - start));
        return true;
    }

    bool array(JsonValue &out)
    {
        ++pos_; // '['
        out.type = JsonValue::Type::Array;
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue elem;
            if (!value(elem))
                return false;
            out.array.push_back(std::move(elem));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool object(JsonValue &out)
    {
        ++pos_; // '{'
        out.type = JsonValue::Type::Object;
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue key;
            if (pos_ >= s_.size() || s_[pos_] != '"' || !string(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return false;
            ++pos_;
            JsonValue val;
            if (!value(val))
                return false;
            out.object.emplace(std::move(key.str), std::move(val));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

std::optional<KvWorkloadKind>
kindFromName(const std::string &name)
{
    if (name == "zipfian")
        return KvWorkloadKind::Zipfian;
    if (name == "hotset")
        return KvWorkloadKind::HotSet;
    if (name == "scan")
        return KvWorkloadKind::Scan;
    if (name == "mix")
        return KvWorkloadKind::Mix;
    return std::nullopt;
}

bool
specFromValue(const JsonValue &v, KvWorkloadSpec &out, std::string *err)
{
    if (v.type != JsonValue::Type::Object) {
        if (err)
            *err = "workload spec must be a JSON object";
        return false;
    }
    auto fail = [&](const std::string &m) {
        if (err)
            *err = m;
        return false;
    };
    for (const auto &[key, val] : v.object) {
        if (key == "kind") {
            if (val.type != JsonValue::Type::String)
                return fail("kind must be a string");
            auto k = kindFromName(val.str);
            if (!k)
                return fail("unknown workload kind \"" + val.str +
                            "\"");
            out.kind = *k;
        } else if (key == "tenant") {
            if (val.type != JsonValue::Type::String)
                return fail("tenant must be a string");
            out.tenant = val.str;
        } else if (key == "keys") {
            out.keys = static_cast<std::uint64_t>(val.number);
        } else if (key == "zipf_theta") {
            out.zipfTheta = val.number;
        } else if (key == "hot_op_fraction") {
            out.hotOpFraction = val.number;
        } else if (key == "hot_key_fraction") {
            out.hotKeyFraction = val.number;
        } else if (key == "scan_len") {
            out.scanLen = static_cast<std::uint64_t>(val.number);
        } else if (key == "get_fraction") {
            out.getFraction = val.number;
        } else if (key == "miss_fraction") {
            out.missFraction = val.number;
        } else if (key == "value_bytes") {
            out.valueBytes = static_cast<std::size_t>(val.number);
        } else if (key == "tenants") {
            if (val.type != JsonValue::Type::Array)
                return fail("tenants must be an array");
            for (const JsonValue &t : val.array) {
                KvWorkloadSpec sub;
                if (!specFromValue(t, sub, err))
                    return false;
                out.tenants.push_back(std::move(sub));
            }
        } else if (key == "weights") {
            if (val.type != JsonValue::Type::Array)
                return fail("weights must be an array");
            for (const JsonValue &w : val.array)
                out.weights.push_back(w.number);
        } else {
            return fail("unknown workload spec key \"" + key + "\"");
        }
    }
    return true;
}

bool
validateSpec(const KvWorkloadSpec &spec, std::string *err)
{
    auto fail = [&](const std::string &m) {
        if (err)
            *err = m;
        return false;
    };
    if (spec.kind == KvWorkloadKind::Mix) {
        if (spec.tenants.empty())
            return fail("mix workload needs at least one tenant");
        if (!spec.weights.empty() &&
            spec.weights.size() != spec.tenants.size())
            return fail("weights and tenants must be parallel");
        for (const KvWorkloadSpec &t : spec.tenants)
            if (!validateSpec(t, err))
                return false;
        return true;
    }
    if (spec.keys == 0)
        return fail("workload needs keys > 0");
    if (spec.kind == KvWorkloadKind::Zipfian &&
        (spec.zipfTheta <= 0.0 || spec.zipfTheta >= 1.0))
        return fail("zipf_theta must lie in (0, 1)");
    if (spec.getFraction < 0.0 || spec.getFraction > 1.0 ||
        spec.missFraction < 0.0 || spec.missFraction > 1.0)
        return fail("fractions must lie in [0, 1]");
    return true;
}

} // namespace

const char *
kvWorkloadKindName(KvWorkloadKind kind)
{
    switch (kind) {
      case KvWorkloadKind::Zipfian: return "zipfian";
      case KvWorkloadKind::HotSet: return "hotset";
      case KvWorkloadKind::Scan: return "scan";
      case KvWorkloadKind::Mix: return "mix";
    }
    return "unknown";
}

/* ---- ZipfSampler ---------------------------------------------------- */

ZipfSampler::ZipfSampler(std::uint64_t n, double theta)
    : n_(n ? n : 1), theta_(theta)
{
    zetan_ = 0.0;
    for (std::uint64_t i = 1; i <= n_; ++i)
        zetan_ += 1.0 / std::pow(static_cast<double>(i), theta_);
    zeta2_ = 1.0 + 1.0 / std::pow(2.0, theta_);
    alpha_ = 1.0 / (1.0 - theta_);
    eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_),
                           1.0 - theta_)) /
           (1.0 - zeta2_ / zetan_);
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    const double u = rng.nextDouble();
    const double uz = u * zetan_;
    if (uz < 1.0)
        return 0;
    if (uz < 1.0 + std::pow(0.5, theta_))
        return 1;
    const double r = static_cast<double>(n_) *
                     std::pow(eta_ * u - eta_ + 1.0, alpha_);
    std::uint64_t rank = static_cast<std::uint64_t>(r);
    if (rank >= n_)
        rank = n_ - 1;
    return rank;
}

/* ---- KvWorkloadGenerator -------------------------------------------- */

KvWorkloadGenerator::KvWorkloadGenerator(const KvWorkloadSpec &spec,
                                         std::uint64_t seed)
    : spec_(spec), rng_(seed * 1000003 + fnv1a(spec.tenant) % 997)
{
    std::string err;
    if (!validateSpec(spec_, &err))
        throw std::invalid_argument("kv workload: " + err);

    switch (spec_.kind) {
      case KvWorkloadKind::Zipfian:
        zipf_ = std::make_unique<ZipfSampler>(spec_.keys,
                                              spec_.zipfTheta);
        break;
      case KvWorkloadKind::Scan:
        scanCursor_ = 0;
        scanLeft_ = spec_.scanLen;
        break;
      case KvWorkloadKind::Mix: {
        double total = 0.0;
        for (std::size_t i = 0; i < spec_.tenants.size(); ++i) {
            tenants_.push_back(std::make_unique<KvWorkloadGenerator>(
                spec_.tenants[i], seed * 1000003 + i + 1));
            total += spec_.weights.empty() ? 1.0 : spec_.weights[i];
            cumWeights_.push_back(total);
        }
        break;
      }
      case KvWorkloadKind::HotSet:
        break;
    }
}

std::string
KvWorkloadGenerator::keyName(std::uint64_t id) const
{
    return spec_.tenant + ":k" + std::to_string(id);
}

std::string
KvWorkloadGenerator::valueFor(const std::string &key,
                              std::uint64_t version,
                              std::size_t value_bytes)
{
    std::string out;
    out.reserve(value_bytes);
    std::uint64_t h = mix64(fnv1a(key) ^ mix64(version));
    for (std::size_t i = 0; i < value_bytes; ++i) {
        if (i % 8 == 0)
            h = mix64(h);
        out.push_back(
            static_cast<char>('a' + ((h >> ((i % 8) * 8)) % 26)));
    }
    return out;
}

std::uint64_t
KvWorkloadGenerator::drawKeyId()
{
    switch (spec_.kind) {
      case KvWorkloadKind::Zipfian: {
        // Scramble the zipf rank so hot keys scatter over the space.
        const std::uint64_t rank = zipf_->sample(rng_);
        return mix64(rank ^ 0x5eedULL) % spec_.keys;
      }
      case KvWorkloadKind::HotSet: {
        const std::uint64_t hot = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(
                   static_cast<double>(spec_.keys) *
                   spec_.hotKeyFraction));
        std::uint64_t id;
        if (rng_.nextBool(spec_.hotOpFraction) || hot >= spec_.keys)
            id = rng_.nextBelow(hot);
        else
            id = hot + rng_.nextBelow(spec_.keys - hot);
        return mix64(id ^ 0x407eULL) % spec_.keys;
      }
      case KvWorkloadKind::Scan: {
        if (scanLeft_ == 0) {
            scanCursor_ = rng_.nextBelow(spec_.keys);
            scanLeft_ = spec_.scanLen;
        }
        const std::uint64_t id = scanCursor_;
        scanCursor_ = (scanCursor_ + 1) % spec_.keys;
        --scanLeft_;
        return id;
      }
      case KvWorkloadKind::Mix:
        break;
    }
    return 0;
}

KvOp
KvWorkloadGenerator::next()
{
    if (spec_.kind == KvWorkloadKind::Mix) {
        const double total = cumWeights_.back();
        const double u = rng_.nextDouble() * total;
        std::size_t pick = 0;
        while (pick + 1 < cumWeights_.size() && u >= cumWeights_[pick])
            ++pick;
        return tenants_[pick]->next();
    }

    KvOp op;
    const std::uint64_t version = opIndex_++;
    op.put = !rng_.nextBool(spec_.getFraction);
    if (!op.put && rng_.nextBool(spec_.missFraction)) {
        op.expectAbsent = true;
        op.key = spec_.tenant + ":m" + std::to_string(missCounter_++);
        return op;
    }
    op.key = keyName(drawKeyId());
    if (op.put)
        op.value = valueFor(op.key, version, spec_.valueBytes);
    return op;
}

std::vector<KvOp>
KvWorkloadGenerator::preload() const
{
    std::vector<KvOp> out;
    if (spec_.kind == KvWorkloadKind::Mix) {
        for (const auto &t : tenants_) {
            auto sub = t->preload();
            out.insert(out.end(), std::make_move_iterator(sub.begin()),
                       std::make_move_iterator(sub.end()));
        }
        return out;
    }
    out.reserve(spec_.keys);
    for (std::uint64_t id = 0; id < spec_.keys; ++id) {
        KvOp op;
        op.put = true;
        op.key = keyName(id);
        op.value = valueFor(op.key, 0, spec_.valueBytes);
        out.push_back(std::move(op));
    }
    return out;
}

/* ---- JSON ----------------------------------------------------------- */

std::string
kvWorkloadSpecToJson(const KvWorkloadSpec &spec, int indent)
{
    const std::string pad(static_cast<std::size_t>(
                              indent < 0 ? 0 : indent) *
                              2,
                          ' ');
    const std::string inner = indent < 0 ? "" : pad + "  ";
    const std::string nl = indent < 0 ? "" : "\n";
    std::ostringstream os;
    os << "{" << nl;
    os << inner
       << "\"kind\": " << util::jsonQuote(kvWorkloadKindName(spec.kind))
       << "," << nl;
    os << inner << "\"tenant\": " << util::jsonQuote(spec.tenant) << ","
       << nl;
    os << inner << "\"keys\": " << spec.keys << "," << nl;
    os << inner << "\"zipf_theta\": " << util::jsonNumber(spec.zipfTheta)
       << "," << nl;
    os << inner
       << "\"hot_op_fraction\": " << util::jsonNumber(spec.hotOpFraction)
       << "," << nl;
    os << inner << "\"hot_key_fraction\": "
       << util::jsonNumber(spec.hotKeyFraction) << "," << nl;
    os << inner << "\"scan_len\": " << spec.scanLen << "," << nl;
    os << inner
       << "\"get_fraction\": " << util::jsonNumber(spec.getFraction)
       << "," << nl;
    os << inner
       << "\"miss_fraction\": " << util::jsonNumber(spec.missFraction)
       << "," << nl;
    os << inner << "\"value_bytes\": " << spec.valueBytes;
    if (!spec.tenants.empty()) {
        os << "," << nl << inner << "\"tenants\": [";
        for (std::size_t i = 0; i < spec.tenants.size(); ++i)
            os << (i ? ", " : "")
               << kvWorkloadSpecToJson(spec.tenants[i], -1);
        os << "]";
        os << "," << nl << inner << "\"weights\": [";
        for (std::size_t i = 0; i < spec.tenants.size(); ++i)
            os << (i ? ", " : "")
               << util::jsonNumber(spec.weights.empty()
                                       ? 1.0
                                       : spec.weights[i]);
        os << "]";
    }
    os << nl << pad << "}";
    return os.str();
}

std::optional<KvWorkloadSpec>
kvWorkloadSpecFromJson(const std::string &text, std::string *err)
{
    Parser parser(text);
    auto v = parser.parse(err);
    if (!v)
        return std::nullopt;
    KvWorkloadSpec spec;
    if (!specFromValue(*v, spec, err))
        return std::nullopt;
    if (!validateSpec(spec, err))
        return std::nullopt;
    return spec;
}

std::optional<KvWorkloadSpec>
parseKvWorkloadFlag(const std::string &flag, std::string *err)
{
    auto fail = [&](const std::string &m) {
        if (err)
            *err = m;
        return std::optional<KvWorkloadSpec>{};
    };
    const std::size_t colon = flag.find(':');
    const std::string name = flag.substr(0, colon);
    const std::string arg =
        colon == std::string::npos ? "" : flag.substr(colon + 1);

    KvWorkloadSpec spec;
    if (name == "zipfian") {
        spec.kind = KvWorkloadKind::Zipfian;
        if (!arg.empty()) {
            try {
                spec.zipfTheta = std::stod(arg);
            } catch (const std::exception &) {
                return fail("bad zipfian theta \"" + arg + "\"");
            }
        }
    } else if (name == "hotset") {
        spec.kind = KvWorkloadKind::HotSet;
        if (!arg.empty()) {
            try {
                spec.hotOpFraction = std::stod(arg);
            } catch (const std::exception &) {
                return fail("bad hotset fraction \"" + arg + "\"");
            }
        }
    } else if (name == "scan") {
        spec.kind = KvWorkloadKind::Scan;
        if (!arg.empty()) {
            try {
                spec.scanLen = std::stoull(arg);
            } catch (const std::exception &) {
                return fail("bad scan length \"" + arg + "\"");
            }
        }
    } else if (name == "mix") {
        if (arg.empty())
            return fail("mix needs a spec file: mix:<file.json>");
        std::ifstream in(arg);
        if (!in)
            return fail("cannot open workload spec file \"" + arg +
                        "\"");
        std::ostringstream buf;
        buf << in.rdbuf();
        return kvWorkloadSpecFromJson(buf.str(), err);
    } else {
        return fail("unknown workload \"" + name +
                    "\" (zipfian:<theta>|hotset:<frac>|scan|"
                    "mix:<file>)");
    }
    std::string verr;
    if (!validateSpec(spec, &verr))
        return fail(verr);
    return spec;
}

/* ---- KvBlockStream -------------------------------------------------- */

KvBlockStream::KvBlockStream(const KvWorkloadSpec &spec,
                             std::uint64_t seed,
                             std::uint64_t footprint_bytes,
                             unsigned blocks_per_slot,
                             double mean_inst_gap)
    : gen_(spec, seed), gapRng_(seed * 1000003 + 31),
      blocksPerSlot_(blocks_per_slot ? blocks_per_slot : 1),
      meanInstGap_(mean_inst_gap)
{
    const std::uint64_t slot_bytes =
        static_cast<std::uint64_t>(blocksPerSlot_) * blockBytes;
    slotCount_ = footprint_bytes / slot_bytes;
    if (slotCount_ == 0)
        slotCount_ = 1;
}

trace::TraceRecord
KvBlockStream::next()
{
    trace::TraceRecord rec;
    if (!havePending_) {
        const KvOp op = gen_.next();
        curSlot_ = mix64(fnv1a(op.key)) % slotCount_;
        curBlock_ = 0;
        curWrite_ = op.put;
        havePending_ = true;
        rec.instGap = static_cast<std::uint32_t>(
            gapRng_.nextGeometric(meanInstGap_));
    } else {
        rec.instGap = 1; // Blocks of one op issue back to back.
    }
    rec.addr = (curSlot_ * blocksPerSlot_ + curBlock_) * blockBytes;
    rec.write = curWrite_;
    if (++curBlock_ >= blocksPerSlot_)
        havePending_ = false;
    return rec;
}

} // namespace secdimm::app
