/**
 * @file
 * App-level leak measurement: does the KV store's externally visible
 * schedule tell the adversary whether lookups hit or miss?  The
 * workload alternates secret phases (present keys vs absent keys) and
 * the per-request observable is the number of schedule events the
 * service emitted -- exactly the PLB-locality methodology of
 * verify/leak_meter.hh lifted from block traffic to application
 * traffic (the ROADMAP's "leak measured over app-level traffic"
 * stretch item).
 *
 * Expected outcomes (gated by sdimm_leakmeter --check and tests/app):
 * the oblivious index measures ~0 bits/access (its CI includes 0);
 * the leaky baseline measures decisively nonzero (hits do work,
 * misses do none -- a full secret bit per access).
 */

#ifndef SECUREDIMM_APP_KV_LEAK_HH
#define SECUREDIMM_APP_KV_LEAK_HH

#include <cstddef>
#include <cstdint>

#include "app/kv_store.hh"
#include "verify/leak_meter.hh"

namespace secdimm::app
{

/** Shape of the hit/miss-phased KV workload. */
struct KvLeakOptions
{
    /** Requests driven (= MI sample count). */
    std::size_t requests = 2000;

    /** Requests per secret phase (hit-phase / miss-phase). */
    std::size_t phaseLen = 16;

    /** Store geometry. */
    std::uint64_t capacityKeys = 96;
    std::size_t valueBytes = 96;
    unsigned shards = 2;

    KvIndexMode index = KvIndexMode::Oblivious;

    std::uint64_t seed = 1;

    verify::MiOptions mi;
};

/**
 * Build a KV store over a sharded PathOram service, preload half its
 * capacity, then alternate phases of hitting gets (resident keys) and
 * missing gets (absent keys) while recording the interleaved
 * schedule.  Returns MI between the secret phase label and the
 * per-request schedule-event count.
 */
verify::LeakReport measureKvHitMissLeak(const KvLeakOptions &opts = {});

} // namespace secdimm::app

#endif // SECUREDIMM_APP_KV_LEAK_HH
