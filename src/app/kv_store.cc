#include "app/kv_store.hh"

#include <algorithm>
#include <cstring>

namespace secdimm::app
{

namespace
{

/** Little-endian u16/u32 record-header fields. */
void
putU16(std::uint8_t *p, std::uint16_t v)
{
    p[0] = static_cast<std::uint8_t>(v);
    p[1] = static_cast<std::uint8_t>(v >> 8);
}

void
putU32(std::uint8_t *p, std::uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        p[i] = static_cast<std::uint8_t>(v >> (8 * i));
}

std::uint16_t
getU16(const std::uint8_t *p)
{
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
}

std::uint32_t
getU32(const std::uint8_t *p)
{
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i)
        v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
    return v;
}

} // namespace

const char *
kvIndexModeName(KvIndexMode mode)
{
    return mode == KvIndexMode::Oblivious ? "oblivious"
                                          : "leaky_baseline";
}

unsigned
ObliviousKVStore::slotBlocksFor(std::size_t max_key_bytes,
                                std::size_t max_value_bytes)
{
    const std::size_t record = headerBytes + max_key_bytes +
                               max_value_bytes;
    return static_cast<unsigned>((record + blockBytes - 1) / blockBytes);
}

std::uint64_t
ObliviousKVStore::slotsFor(
    const serve::ShardedSecureMemory::Options &serve_opts,
    std::size_t max_key_bytes, std::size_t max_value_bytes)
{
    serve::ShardedSecureMemory probe(serve_opts);
    return probe.capacityBlocks() /
           slotBlocksFor(max_key_bytes, max_value_bytes);
}

ObliviousKVStore::ObliviousKVStore(const Options &options)
    : mem_(std::make_unique<serve::ShardedSecureMemory>(options.serve)),
      mode_(options.index), capacityKeys_(options.capacityKeys),
      maxKeyBytes_(options.maxKeyBytes),
      maxValueBytes_(options.maxValueBytes),
      blocksPerSlot_(slotBlocksFor(options.maxKeyBytes,
                                   options.maxValueBytes)),
      slotCount_(mem_->capacityBlocks() / blocksPerSlot_),
      opDeadline_(options.opDeadline),
      rng_(options.seed * 1000003 + 17)
{
    if (capacityKeys_ == 0)
        throw std::invalid_argument("kv: capacityKeys must be > 0");
    if (maxKeyBytes_ == 0 || maxKeyBytes_ > 0xffff)
        throw std::invalid_argument("kv: maxKeyBytes outside [1, 65535]");
    if (slotCount_ < capacityKeys_ + 2)
        throw std::invalid_argument(
            "kv: service capacity provides " +
            std::to_string(slotCount_) + " slots of " +
            std::to_string(blocksPerSlot_) + " blocks; need >= " +
            std::to_string(capacityKeys_ + 2) +
            " (capacityKeys + 2 slack)");
    slackSlots_ = slotCount_ - capacityKeys_;
    maxOpsInFlight_ = static_cast<std::size_t>(
        std::max<std::uint64_t>(1, slackSlots_ - 1));

    freeSlots_.reserve(slotCount_);
    for (std::uint64_t s = 0; s < slotCount_; ++s)
        freeSlots_.push_back(s);

    kv_.setCounter("kv.capacity_keys", capacityKeys_);
    kv_.setCounter("kv.slots", slotCount_);
    kv_.setCounter("kv.blocks_per_slot", blocksPerSlot_);
    kv_.setCounter("kv.slack_slots", slackSlots_);
    kv_.setGauge("kv.live_keys", 0.0);
}

ObliviousKVStore::~ObliviousKVStore() = default;

std::uint64_t
ObliviousKVStore::liveKeys() const
{
    std::lock_guard<std::mutex> lk(mu_);
    return mode_ == KvIndexMode::Oblivious ? index_.size()
                                           : leakyIndex_.size();
}

util::MetricsRegistry
ObliviousKVStore::metrics()
{
    util::MetricsRegistry out = mem_->metrics();
    {
        std::lock_guard<std::mutex> lk(mu_);
        kv_.setGauge("kv.live_keys",
                     static_cast<double>(mode_ == KvIndexMode::Oblivious
                                             ? index_.size()
                                             : leakyIndex_.size()));
        out.merge(kv_);
    }
    return out;
}

void
ObliviousKVStore::validateKey(const std::string &key) const
{
    if (key.empty() || key.size() > maxKeyBytes_)
        throw KeyTooLargeError(key.size(), maxKeyBytes_);
}

std::vector<BlockData>
ObliviousKVStore::encodeRecord(const std::string &key,
                               const std::string &value) const
{
    std::vector<std::uint8_t> bytes(
        static_cast<std::size_t>(blocksPerSlot_) * blockBytes, 0);
    putU16(bytes.data(), static_cast<std::uint16_t>(key.size()));
    putU32(bytes.data() + 2, static_cast<std::uint32_t>(value.size()));
    std::memcpy(bytes.data() + headerBytes, key.data(), key.size());
    std::memcpy(bytes.data() + headerBytes + key.size(), value.data(),
                value.size());

    std::vector<BlockData> blocks(blocksPerSlot_);
    for (unsigned b = 0; b < blocksPerSlot_; ++b)
        std::memcpy(blocks[b].data(), bytes.data() + b * blockBytes,
                    blockBytes);
    return blocks;
}

std::optional<std::pair<std::string, std::string>>
ObliviousKVStore::decodeRecord(const std::vector<BlockData> &blocks) const
{
    std::vector<std::uint8_t> bytes;
    bytes.reserve(blocks.size() * blockBytes);
    for (const BlockData &b : blocks)
        bytes.insert(bytes.end(), b.begin(), b.end());

    const std::uint16_t key_len = getU16(bytes.data());
    const std::uint32_t value_len = getU32(bytes.data() + 2);
    if (key_len == 0 || key_len > maxKeyBytes_ ||
        value_len > maxValueBytes_)
        return std::nullopt; // Dummy or garbage record.
    if (headerBytes + key_len + value_len > bytes.size())
        return std::nullopt;

    std::string key(reinterpret_cast<const char *>(bytes.data()) +
                        headerBytes,
                    key_len);
    std::string value(reinterpret_cast<const char *>(bytes.data()) +
                          headerBytes + key_len,
                      value_len);
    return std::make_pair(std::move(key), std::move(value));
}

template <typename T>
T
ObliviousKVStore::awaitFuture(std::future<T> &f, Addr block)
{
    if (opDeadline_.count() > 0 &&
        f.wait_for(opDeadline_) == std::future_status::timeout)
        throw serve::RequestTimeoutError(mem_->shardOf(block),
                                         opDeadline_);
    return f.get();
}

std::uint64_t
ObliviousKVStore::drawFreeSlotLocked()
{
    // The admission cap (maxOpsInFlight_ < slackSlots_) guarantees
    // the pool cannot run dry: every in-flight op holds exactly one
    // pool slot and live + reserved inserts never exceed capacityKeys.
    if (freeSlots_.empty())
        throw std::logic_error("kv: free-slot pool exhausted");
    const std::size_t i =
        static_cast<std::size_t>(rng_.nextBelow(freeSlots_.size()));
    const std::uint64_t slot = freeSlots_[i];
    freeSlots_[i] = freeSlots_.back();
    freeSlots_.pop_back();
    return slot;
}

/* ---- public API ---------------------------------------------------- */

void
ObliviousKVStore::put(const std::string &key, const std::string &value)
{
    std::vector<PlannedOp> ops(1);
    ops[0].kind = OpKind::Put;
    ops[0].key = key;
    ops[0].value = value;
    runOps(ops);
}

std::optional<std::string>
ObliviousKVStore::get(const std::string &key)
{
    std::vector<PlannedOp> ops(1);
    ops[0].kind = OpKind::Get;
    ops[0].key = key;
    runOps(ops);
    return ops[0].result;
}

bool
ObliviousKVStore::erase(const std::string &key)
{
    std::vector<PlannedOp> ops(1);
    ops[0].kind = OpKind::Erase;
    ops[0].key = key;
    runOps(ops);
    return ops[0].found;
}

std::vector<std::optional<std::string>>
ObliviousKVStore::multiGet(const std::vector<std::string> &keys)
{
    std::vector<PlannedOp> ops(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i) {
        ops[i].kind = OpKind::Get;
        ops[i].key = keys[i];
    }
    runOps(ops);

    std::vector<std::optional<std::string>> out(keys.size());
    for (std::size_t i = 0; i < keys.size(); ++i)
        out[i] = std::move(ops[i].result);
    return out;
}

void
ObliviousKVStore::multiPut(
    const std::vector<std::pair<std::string, std::string>> &items)
{
    std::vector<PlannedOp> ops(items.size());
    for (std::size_t i = 0; i < items.size(); ++i) {
        ops[i].kind = OpKind::Put;
        ops[i].key = items[i].first;
        ops[i].value = items[i].second;
    }
    runOps(ops);
}

/* ---- oblivious execution ------------------------------------------- */

void
ObliviousKVStore::runOps(std::vector<PlannedOp> &ops)
{
    for (const PlannedOp &op : ops) {
        validateKey(op.key);
        if (op.kind == OpKind::Put && op.value.size() > maxValueBytes_)
            throw ValueTooLargeError(op.value.size(), maxValueBytes_);
    }

    if (mode_ == KvIndexMode::LeakyBaseline) {
        runOpsLeaky(ops);
        return;
    }

    kv_.incCounter("kv.batches");
    kv_.sampleHistogram("kv.batch_size", ops.size());

    // Ordered rounds: a key repeated inside one batch runs in a later
    // round, so same-key ops apply in submission order; rounds are
    // further chunked to the admission cap so the free-slot pool can
    // never be exhausted by one oversized batch.
    std::vector<bool> done(ops.size(), false);
    std::size_t remaining = ops.size();
    while (remaining > 0) {
        std::unordered_set<std::string> in_round;
        std::vector<PlannedOp *> chunk;
        for (std::size_t i = 0; i < ops.size(); ++i) {
            if (done[i] || in_round.count(ops[i].key))
                continue;
            in_round.insert(ops[i].key);
            chunk.push_back(&ops[i]);
            done[i] = true;
            --remaining;
            if (chunk.size() == maxOpsInFlight_)
                break;
        }
        runChunk(chunk);
    }
}

void
ObliviousKVStore::planChunk(std::vector<PlannedOp *> &chunk,
                            std::unique_lock<std::mutex> &lk)
{
    // Admit: wait until our keys are not in flight and the chunk fits
    // under the in-flight-op cap.  We hold no pool slots while
    // waiting, and in-flight ops complete without needing anything we
    // hold, so this cannot deadlock.
    cv_.wait(lk, [&] {
        if (inflightOps_ != 0 &&
            inflightOps_ + chunk.size() > maxOpsInFlight_)
            return false;
        for (const PlannedOp *op : chunk)
            if (inflightKeys_.count(op->key))
                return false;
        return true;
    });

    for (PlannedOp *op : chunk)
        inflightKeys_.insert(op->key);
    inflightOps_ += chunk.size();

    for (PlannedOp *op : chunk) {
        auto it = index_.find(op->key);
        op->hit = it != index_.end();
        if (op->kind == OpKind::Put && !op->hit) {
            if (index_.size() + reservedInserts_ >= capacityKeys_)
                op->full = true;
            else {
                op->insert = true;
                ++reservedInserts_;
            }
        }
        op->readSlot =
            op->hit ? it->second : rng_.nextBelow(slotCount_);
        op->writeSlot = drawFreeSlotLocked();
    }
}

void
ObliviousKVStore::commitChunk(std::vector<PlannedOp *> &chunk)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (PlannedOp *op : chunk) {
        inflightKeys_.erase(op->key);
        switch (op->kind) {
          case OpKind::Get:
            kv_.incCounter("kv.gets");
            if (op->hit) {
                index_[op->key] = op->writeSlot;
                freeSlots_.push_back(op->readSlot);
            } else {
                freeSlots_.push_back(op->writeSlot);
                kv_.incCounter("kv.dummy_ops");
            }
            break;
          case OpKind::Put:
            kv_.incCounter("kv.puts");
            if (op->hit) {
                index_[op->key] = op->writeSlot;
                freeSlots_.push_back(op->readSlot);
                kv_.incCounter("kv.updates");
            } else if (op->insert) {
                index_[op->key] = op->writeSlot;
                --reservedInserts_;
                kv_.incCounter("kv.inserts");
            } else { // Full: dummy sequence done, slot returns.
                freeSlots_.push_back(op->writeSlot);
                kv_.incCounter("kv.store_full_errors");
                kv_.incCounter("kv.dummy_ops");
            }
            break;
          case OpKind::Erase:
            kv_.incCounter("kv.erases");
            if (op->hit) {
                index_.erase(op->key);
                freeSlots_.push_back(op->readSlot);
                freeSlots_.push_back(op->writeSlot);
            } else {
                freeSlots_.push_back(op->writeSlot);
                kv_.incCounter("kv.dummy_ops");
            }
            break;
        }
        kv_.incCounter(op->hit ? "kv.hits" : "kv.misses");
        kv_.incCounter("kv.blocks_read", blocksPerSlot_);
        kv_.incCounter("kv.blocks_written", blocksPerSlot_);
    }
    inflightOps_ -= chunk.size();
    cv_.notify_all();
}

void
ObliviousKVStore::rollbackChunk(std::vector<PlannedOp *> &chunk)
{
    std::lock_guard<std::mutex> lk(mu_);
    for (PlannedOp *op : chunk) {
        inflightKeys_.erase(op->key);
        freeSlots_.push_back(op->writeSlot);
        if (op->insert)
            --reservedInserts_;
        // No index mutation happened yet, so the pre-op mapping (and
        // the data at the key's old slot) is untouched.
    }
    inflightOps_ -= chunk.size();
    cv_.notify_all();
}

void
ObliviousKVStore::runChunk(std::vector<PlannedOp *> &chunk)
{
    if (chunk.empty())
        return;
    {
        std::unique_lock<std::mutex> lk(mu_);
        planChunk(chunk, lk);
    }

    const PlannedOp *full_op = nullptr;
    try {
        // Phase R: fan every op's slot reads out, then await.  Every
        // op reads exactly blocksPerSlot_ consecutive blocks.
        std::vector<std::future<BlockData>> reads;
        reads.reserve(chunk.size() * blocksPerSlot_);
        for (PlannedOp *op : chunk)
            for (unsigned b = 0; b < blocksPerSlot_; ++b)
                reads.push_back(mem_->submitRead(
                    op->readSlot * blocksPerSlot_ + b));
        std::size_t r = 0;
        for (PlannedOp *op : chunk) {
            op->readBlocks.resize(blocksPerSlot_);
            for (unsigned b = 0; b < blocksPerSlot_; ++b, ++r)
                op->readBlocks[b] = awaitFuture(
                    reads[r], op->readSlot * blocksPerSlot_ + b);
        }

        // Interpret the reads and build phase-W payloads.
        std::vector<std::vector<BlockData>> payloads(chunk.size());
        for (std::size_t i = 0; i < chunk.size(); ++i) {
            PlannedOp *op = chunk[i];
            if (op->hit) {
                auto rec = decodeRecord(op->readBlocks);
                if (!rec || rec->first != op->key) {
                    // Corrupt record (e.g. byzantine damage): count
                    // it, serve a miss, but keep the access sequence.
                    kv_.incCounter("kv.key_mismatches");
                } else {
                    op->found = true;
                    if (op->kind == OpKind::Get)
                        op->result = rec->second;
                }
            }
            if (op->kind == OpKind::Put && !op->full)
                payloads[i] = encodeRecord(op->key, op->value);
            else if (op->hit && op->kind != OpKind::Erase)
                payloads[i] = op->readBlocks; // Move record verbatim.
            else
                payloads[i].assign(blocksPerSlot_, BlockData{});
            if (op->full)
                full_op = op;
        }

        // Phase W: every op writes exactly blocksPerSlot_ consecutive
        // blocks of its (uniform, exclusively held) write slot.
        std::vector<std::future<void>> writes;
        writes.reserve(chunk.size() * blocksPerSlot_);
        for (std::size_t i = 0; i < chunk.size(); ++i)
            for (unsigned b = 0; b < blocksPerSlot_; ++b)
                writes.push_back(mem_->submitWrite(
                    chunk[i]->writeSlot * blocksPerSlot_ + b,
                    payloads[i][b]));
        std::size_t w = 0;
        for (PlannedOp *op : chunk)
            for (unsigned b = 0; b < blocksPerSlot_; ++b, ++w)
                awaitFuture(writes[w],
                            op->writeSlot * blocksPerSlot_ + b);
    } catch (...) {
        rollbackChunk(chunk);
        throw;
    }

    commitChunk(chunk);
    if (full_op != nullptr)
        throw KvStoreFullError(full_op->key);
}

/* ---- leaky positive control ---------------------------------------- */

void
ObliviousKVStore::runOpsLeaky(std::vector<PlannedOp> &ops)
{
    // Everything a real (non-oblivious) hash-table-over-blocks server
    // would do: static slots, hit-length reads, nothing on a miss.
    // Sequential and fully serialized -- this mode exists only as the
    // FAIL control for the trace/schedule checkers.
    std::lock_guard<std::mutex> lk(mu_);
    kv_.incCounter("kv.batches");
    kv_.sampleHistogram("kv.batch_size", ops.size());

    for (PlannedOp &op : ops) {
        auto it = leakyIndex_.find(op.key);
        op.hit = it != leakyIndex_.end();
        kv_.incCounter(op.hit ? "kv.hits" : "kv.misses");
        switch (op.kind) {
          case OpKind::Get: {
            kv_.incCounter("kv.gets");
            if (!op.hit)
                break; // Miss: zero accesses -- the leak.
            std::vector<BlockData> blocks(it->second.blocks);
            for (unsigned b = 0; b < it->second.blocks; ++b) {
                auto f = mem_->submitRead(
                    it->second.slot * blocksPerSlot_ + b);
                blocks[b] = awaitFuture(
                    f, it->second.slot * blocksPerSlot_ + b);
            }
            kv_.incCounter("kv.blocks_read", it->second.blocks);
            std::vector<BlockData> padded = blocks;
            padded.resize(blocksPerSlot_);
            if (auto rec = decodeRecord(padded);
                rec && rec->first == op.key) {
                op.found = true;
                op.result = rec->second;
            }
            break;
          }
          case OpKind::Put: {
            kv_.incCounter("kv.puts");
            std::uint64_t slot;
            if (op.hit)
                slot = it->second.slot;
            else {
                if (leakyIndex_.size() >= capacityKeys_ ||
                    freeSlots_.empty())
                    throw KvStoreFullError(op.key);
                slot = freeSlots_.back();
                freeSlots_.pop_back();
            }
            const unsigned used = static_cast<unsigned>(
                (headerBytes + op.key.size() + op.value.size() +
                 blockBytes - 1) /
                blockBytes);
            const auto payload = encodeRecord(op.key, op.value);
            for (unsigned b = 0; b < used; ++b) {
                auto f = mem_->submitWrite(
                    slot * blocksPerSlot_ + b, payload[b]);
                awaitFuture(f, slot * blocksPerSlot_ + b);
            }
            kv_.incCounter("kv.blocks_written", used);
            kv_.incCounter(op.hit ? "kv.updates" : "kv.inserts");
            leakyIndex_[op.key] = LeakyEntry{slot, used};
            break;
          }
          case OpKind::Erase:
            kv_.incCounter("kv.erases");
            if (op.hit) {
                op.found = true;
                freeSlots_.push_back(it->second.slot);
                leakyIndex_.erase(it);
            }
            break;
        }
    }
}

} // namespace secdimm::app
