/**
 * @file
 * Oblivious key-value store over the sharded oblivious memory
 * service: variable-length keys map to fixed-geometry slots (a run of
 * consecutive blocks) through a position-map-style client index that
 * is remapped on EVERY access, the slot-granularity analogue of Path
 * ORAM's leaf remap (Stefanov et al.) and of the app-over-ORAM
 * layering in The Pyramid Scheme.
 *
 * Obliviousness invariant (docs/KVSTORE.md has the full argument):
 * every operation -- get or put, hit or miss, insert or update or
 * erase, even a capacity-exhausted insert -- performs EXACTLY
 * blocksPerSlot() block reads of one slot followed by blocksPerSlot()
 * block writes of another, where
 *
 *  - the read slot is the key's current slot (a uniform draw made at
 *    the key's previous access and never revealed since) on a hit,
 *    or a fresh uniform draw over ALL slots on a miss;
 *  - the written slot is always a fresh uniform draw from the free
 *    pool (on a hit the record MOVES there and the old slot is
 *    freed; misses write an indistinguishable dummy and return the
 *    slot to the pool).
 *
 * The service hides local addresses inside each shard (each shard is
 * a complete ORAM), so the externally visible channel reduces to the
 * per-shard schedules plus the interleaved (shard, kind) sequence --
 * and every slot above is a uniform draw, so the visible shard
 * residues are independent of keys, values, and hit/miss outcomes.
 * The deliberately leaky baseline (KvIndexMode::LeakyBaseline) pins
 * keys to static slots and skips dummy work; it exists as the
 * positive control that makes deepCompareTraces / compareSchedules
 * FAIL (tests/app, tools/sdimm_leakmeter).
 */

#ifndef SECUREDIMM_APP_KV_STORE_HH
#define SECUREDIMM_APP_KV_STORE_HH

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "serve/sharded_memory.hh"
#include "util/metrics.hh"
#include "util/rng.hh"
#include "util/types.hh"

namespace secdimm::app
{

/** Base class of every typed KV-store error. */
class KvError : public std::runtime_error
{
  public:
    using std::runtime_error::runtime_error;
};

/**
 * Insert rejected because capacityKeys live keys already exist.  The
 * store NEVER silently evicts; the failing insert still performs the
 * full dummy access sequence before throwing, so capacity exhaustion
 * is invisible on the channel.
 */
class KvStoreFullError : public KvError
{
  public:
    explicit KvStoreFullError(const std::string &key)
        : KvError("kv store full: insert of key \"" + key +
                  "\" rejected (no silent eviction)")
    {
    }
};

/** Key empty or longer than Options::maxKeyBytes. */
class KeyTooLargeError : public KvError
{
  public:
    explicit KeyTooLargeError(std::size_t len, std::size_t max)
        : KvError("kv key of " + std::to_string(len) +
                  " bytes outside [1, " + std::to_string(max) + "]")
    {
    }
};

/** Value longer than Options::maxValueBytes. */
class ValueTooLargeError : public KvError
{
  public:
    explicit ValueTooLargeError(std::size_t len, std::size_t max)
        : KvError("kv value of " + std::to_string(len) +
                  " bytes exceeds max " + std::to_string(max))
    {
    }
};

/** Which client index implementation the store runs. */
enum class KvIndexMode
{
    /** Per-access remap; the invariant documented above holds. */
    Oblivious,
    /**
     * Positive control: static key->slot assignment, hit-length
     * reads, no dummy work on misses.  Deliberately leaky.
     */
    LeakyBaseline,
};

const char *kvIndexModeName(KvIndexMode mode);

/**
 * Oblivious KV store over serve::ShardedSecureMemory.  Thread-safe:
 * concurrent clients may issue single and batched operations; ops on
 * the same key serialize, ops on distinct keys overlap through the
 * service's per-shard queues.
 */
class ObliviousKVStore
{
  public:
    struct Options
    {
        /** Service under the store (capacity, shards, protocol...). */
        serve::ShardedSecureMemory::Options serve;

        /** Live-key capacity; inserts beyond it throw KvStoreFullError.
         *  The service capacity must provide at least capacityKeys + 2
         *  slots (constructor throws std::invalid_argument if not);
         *  the surplus is the free-slot slack remaps draw from. */
        std::uint64_t capacityKeys = 256;

        /** Geometry bounds; together they fix blocksPerSlot(). */
        std::size_t maxKeyBytes = 48;
        std::size_t maxValueBytes = 192;

        KvIndexMode index = KvIndexMode::Oblivious;

        /** Seed of the slot-remap draws (decorrelated from the
         *  service seed by the usual per-component derivation). */
        std::uint64_t seed = 1;

        /** Per-block-request wait bound; 0 = unbounded.  On expiry
         *  the op throws serve::RequestTimeoutError and rolls back
         *  (the key keeps its pre-op value). */
        std::chrono::milliseconds opDeadline{0};
    };

    explicit ObliviousKVStore(const Options &options);
    ~ObliviousKVStore();

    ObliviousKVStore(const ObliviousKVStore &) = delete;
    ObliviousKVStore &operator=(const ObliviousKVStore &) = delete;

    /* ---- single-key operations ----------------------------------- */
    /** Insert or update.  Throws KvStoreFullError on a full insert. */
    void put(const std::string &key, const std::string &value);

    /** Lookup; nullopt on miss (after the full dummy sequence). */
    std::optional<std::string> get(const std::string &key);

    /** Remove; returns whether the key existed. */
    bool erase(const std::string &key);

    /* ---- batched operations -------------------------------------- */
    /**
     * Batched lookup: plans every op in one pass and fans the block
     * reads out across the shard queues before any wait, amortizing
     * per-shard worker wakeups.  Reads observe pre-batch state except
     * that duplicate keys inside one batch apply in order.
     */
    std::vector<std::optional<std::string>>
    multiGet(const std::vector<std::string> &keys);

    /** Batched insert/update (see multiGet).  If an insert hits
     *  capacity, ops planned before it still commit, the failing op
     *  performs its dummy sequence, then KvStoreFullError is thrown. */
    void multiPut(
        const std::vector<std::pair<std::string, std::string>> &items);

    /* ---- introspection ------------------------------------------- */
    std::uint64_t liveKeys() const;
    std::uint64_t capacityKeys() const { return capacityKeys_; }
    std::uint64_t slotCount() const { return slotCount_; }
    unsigned blocksPerSlot() const { return blocksPerSlot_; }
    KvIndexMode indexMode() const { return mode_; }

    /** The service underneath (observer/recorder hooks, health). */
    serve::ShardedSecureMemory &service() { return *mem_; }

    /** Wait until every accepted block request has completed. */
    void drain() { mem_->drain(); }

    /** kv.* counters merged with the full service snapshot (drains
     *  first, so it must not race with active clients). */
    util::MetricsRegistry metrics();

    /** All shards' integrity checks pass (drains first). */
    bool integrityOk() { return mem_->integrityOk(); }

    /** Slots a service of @p serve_opts would provide for this
     *  geometry -- sizing helper for callers picking capacities. */
    static std::uint64_t
    slotsFor(const serve::ShardedSecureMemory::Options &serve_opts,
             std::size_t max_key_bytes, std::size_t max_value_bytes);

  private:
    enum class OpKind
    {
        Get,
        Put,
        Erase,
    };

    /** One planned operation of a batch chunk. */
    struct PlannedOp
    {
        OpKind kind = OpKind::Get;
        std::string key;
        std::string value; ///< Put payload.

        bool hit = false;
        bool insert = false; ///< Put creating a new live key.
        bool full = false;   ///< Insert rejected: dummy + throw.
        std::uint64_t readSlot = 0;
        std::uint64_t writeSlot = 0;

        std::vector<BlockData> readBlocks;
        std::optional<std::string> result;
        bool found = false;
    };

    static unsigned slotBlocksFor(std::size_t max_key_bytes,
                                  std::size_t max_value_bytes);

    /** Run @p ops as ordered rounds of distinct-key chunks. */
    void runOps(std::vector<PlannedOp> &ops);

    /** One chunk: plan under the lock, do I/O outside it, commit. */
    void runChunk(std::vector<PlannedOp *> &chunk);

    /** Plan a chunk; called with mu_ held. */
    void planChunk(std::vector<PlannedOp *> &chunk,
                   std::unique_lock<std::mutex> &lk);
    void commitChunk(std::vector<PlannedOp *> &chunk);
    void rollbackChunk(std::vector<PlannedOp *> &chunk);

    /** Leaky positive control: no dummies, static slots. */
    void runOpsLeaky(std::vector<PlannedOp> &ops);

    std::uint64_t drawFreeSlotLocked();
    void validateKey(const std::string &key) const;

    /** Encode key+value into blocksPerSlot_ blocks. */
    std::vector<BlockData> encodeRecord(const std::string &key,
                                        const std::string &value) const;
    /** Decode; nullopt for dummy/garbage records. */
    std::optional<std::pair<std::string, std::string>>
    decodeRecord(const std::vector<BlockData> &blocks) const;

    template <typename T>
    T awaitFuture(std::future<T> &f, Addr block);

    /** Bytes of record header: u16 key length + u32 value length. */
    static constexpr std::size_t headerBytes = 6;

    std::unique_ptr<serve::ShardedSecureMemory> mem_;
    KvIndexMode mode_;
    std::uint64_t capacityKeys_;
    std::size_t maxKeyBytes_;
    std::size_t maxValueBytes_;
    unsigned blocksPerSlot_;
    std::uint64_t slotCount_;
    std::uint64_t slackSlots_;
    std::size_t maxOpsInFlight_;
    std::chrono::milliseconds opDeadline_;

    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::unordered_map<std::string, std::uint64_t> index_;
    std::vector<std::uint64_t> freeSlots_;
    std::unordered_set<std::string> inflightKeys_;
    std::uint64_t reservedInserts_ = 0;
    std::size_t inflightOps_ = 0;
    Rng rng_;

    /** Leaky-baseline index: static slot + used-block count. */
    struct LeakyEntry
    {
        std::uint64_t slot;
        unsigned blocks;
    };
    std::unordered_map<std::string, LeakyEntry> leakyIndex_;

    util::MetricsRegistry kv_;
};

} // namespace secdimm::app

#endif // SECUREDIMM_APP_KV_STORE_HH
