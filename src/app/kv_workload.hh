/**
 * @file
 * Realistic KV workload engine: seeded zipfian, hot-set, scan-heavy,
 * and multi-tenant mix generators sharing one WorkloadSpec JSON
 * schema (docs/KVSTORE.md).  One spec + one seed reproduces the exact
 * op stream everywhere it is consumed: the ObliviousKVStore benches
 * (bench_kv_throughput), the trace_replay CLI (--workload=...), the
 * leak meter's KV experiment, and the chaos campaigns.
 *
 * The zipfian sampler is the standard YCSB construction (theta in
 * (0, 1)); ranks are scrambled through splitmix64 so "hot" keys
 * scatter over the id space instead of clustering at low ids.
 */

#ifndef SECUREDIMM_APP_KV_WORKLOAD_HH
#define SECUREDIMM_APP_KV_WORKLOAD_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "trace/record_source.hh"
#include "util/rng.hh"

namespace secdimm::app
{

/** Key-popularity shapes the engine can generate. */
enum class KvWorkloadKind
{
    Zipfian, ///< YCSB-style zipf(theta) popularity.
    HotSet,  ///< hotOpFraction of ops on a hotKeyFraction key subset.
    Scan,    ///< Sequential sweeps of scanLen keys, then jump.
    Mix,     ///< Weighted blend of tenant sub-specs.
};

const char *kvWorkloadKindName(KvWorkloadKind kind);

/** One workload description; serializable as JSON (docs/KVSTORE.md). */
struct KvWorkloadSpec
{
    KvWorkloadKind kind = KvWorkloadKind::Zipfian;

    /** Key namespace prefix; tenants of a mix must differ. */
    std::string tenant = "t0";

    /** Resident key population (preloaded before measurement). */
    std::uint64_t keys = 512;

    /** Zipfian skew, in (0, 1); 0.99 is the YCSB default. */
    double zipfTheta = 0.99;

    /** HotSet: fraction of ops aimed at the hot subset, and the hot
     *  subset's size as a fraction of the population. */
    double hotOpFraction = 0.9;
    double hotKeyFraction = 0.1;

    /** Scan: keys touched per sweep before jumping elsewhere. */
    std::uint64_t scanLen = 64;

    /** Op mix: P(get); the rest are puts. */
    double getFraction = 0.8;

    /** P(a get targets an absent key) -- exercises the miss path. */
    double missFraction = 0.0;

    /** Value payload size (bytes) this workload writes/expects. */
    std::size_t valueBytes = 96;

    /** Mix only: tenant sub-specs and their op-share weights
     *  (parallel vectors; weights need not be normalized). */
    std::vector<KvWorkloadSpec> tenants;
    std::vector<double> weights;
};

/** One generated operation. */
struct KvOp
{
    std::string key;
    std::string value; ///< Put payload (empty for gets).
    bool put = false;
    /** The generator aimed at a never-inserted key (miss traffic). */
    bool expectAbsent = false;
};

/** YCSB zipfian rank sampler over [0, n), theta in (0, 1). */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta);
    std::uint64_t sample(Rng &rng) const;

  private:
    std::uint64_t n_;
    double theta_;
    double zetan_;
    double zeta2_;
    double alpha_;
    double eta_;
};

/**
 * Deterministic op stream for one spec + seed.  The value written for
 * (key, op-index) is a pure function of both, so replays can check
 * read-your-writes without recording payloads.
 */
class KvWorkloadGenerator
{
  public:
    KvWorkloadGenerator(const KvWorkloadSpec &spec, std::uint64_t seed);

    /** Produce the next operation. */
    KvOp next();

    /** Put ops that install the resident population (run before
     *  measuring so gets hit unless missFraction says otherwise). */
    std::vector<KvOp> preload() const;

    const KvWorkloadSpec &spec() const { return spec_; }

    /** The deterministic payload next() writes for @p key at write
     *  sequence number @p version. */
    static std::string valueFor(const std::string &key,
                                std::uint64_t version,
                                std::size_t value_bytes);

  private:
    std::string keyName(std::uint64_t id) const;
    std::uint64_t drawKeyId();

    KvWorkloadSpec spec_;
    Rng rng_;
    std::uint64_t opIndex_ = 0;
    std::uint64_t missCounter_ = 0;

    /** Zipfian state. */
    std::unique_ptr<ZipfSampler> zipf_;

    /** Scan state. */
    std::uint64_t scanCursor_ = 0;
    std::uint64_t scanLeft_ = 0;

    /** Mix state. */
    std::vector<std::unique_ptr<KvWorkloadGenerator>> tenants_;
    std::vector<double> cumWeights_;
};

/* ---- WorkloadSpec JSON --------------------------------------------- */

/** Serialize a spec (round-trips through kvWorkloadSpecFromJson). */
std::string kvWorkloadSpecToJson(const KvWorkloadSpec &spec,
                                 int indent = 0);

/** Parse; nullopt on malformed input (err gets a diagnostic). */
std::optional<KvWorkloadSpec>
kvWorkloadSpecFromJson(const std::string &text,
                       std::string *err = nullptr);

/**
 * Parse a CLI shorthand: "zipfian:<theta>", "hotset:<frac>", "scan",
 * or "mix:<file.json>" (the file holds a full spec, usually of kind
 * mix).  Used by trace_replay --workload= and the benches.
 */
std::optional<KvWorkloadSpec>
parseKvWorkloadFlag(const std::string &flag, std::string *err = nullptr);

/* ---- trace adapter -------------------------------------------------- */

/**
 * Adapts a KV op stream to a trace::RecordSource so the timing
 * simulator (core::runWorkloadFromSource) and trace_replay can replay
 * application-shaped traffic: each op becomes blocksPerSlot
 * consecutive block touches of a hashed slot inside footprintBytes.
 */
class KvBlockStream : public trace::RecordSource
{
  public:
    KvBlockStream(const KvWorkloadSpec &spec, std::uint64_t seed,
                  std::uint64_t footprint_bytes,
                  unsigned blocks_per_slot = 4,
                  double mean_inst_gap = 200.0);

    trace::TraceRecord next() override;

    unsigned blocksPerSlot() const { return blocksPerSlot_; }

  private:
    KvWorkloadGenerator gen_;
    Rng gapRng_;
    std::uint64_t slotCount_;
    unsigned blocksPerSlot_;
    double meanInstGap_;

    /** Blocks of the current op not yet emitted. */
    std::uint64_t curSlot_ = 0;
    unsigned curBlock_ = 0;
    bool curWrite_ = false;
    bool havePending_ = false;
};

} // namespace secdimm::app

#endif // SECUREDIMM_APP_KV_WORKLOAD_HH
