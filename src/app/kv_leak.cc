#include "app/kv_leak.hh"

#include <string>
#include <vector>

#include "util/rng.hh"

namespace secdimm::app
{

verify::LeakReport
measureKvHitMissLeak(const KvLeakOptions &opts)
{
    ObliviousKVStore::Options kvopt;
    kvopt.serve.shard.protocol =
        core::SecureMemorySystem::Protocol::PathOram;
    kvopt.serve.numShards = opts.shards;
    kvopt.serve.shard.seed = opts.seed * 1000003 + 5;
    kvopt.capacityKeys = opts.capacityKeys;
    kvopt.maxValueBytes = opts.valueBytes;
    kvopt.index = opts.index;
    kvopt.seed = opts.seed;

    // Size the service for capacityKeys + 25% slack slots.
    const std::size_t record =
        6 + kvopt.maxKeyBytes + kvopt.maxValueBytes;
    const std::uint64_t blocks_per_slot =
        (record + blockBytes - 1) / blockBytes;
    const std::uint64_t slots =
        kvopt.capacityKeys + kvopt.capacityKeys / 4 + 4;
    kvopt.serve.shard.capacityBytes =
        slots * blocks_per_slot * blockBytes;

    ObliviousKVStore store(kvopt);
    verify::ScheduleRecorder recorder;
    store.service().setScheduleRecorder(&recorder);

    // Preload half the capacity so the hit phase has keys to hit.
    const std::uint64_t resident = opts.capacityKeys / 2;
    for (std::uint64_t i = 0; i < resident; ++i)
        store.put("leak:k" + std::to_string(i),
                  std::string(opts.valueBytes / 2 + 1, 'v'));
    store.drain();
    recorder.clear();

    Rng draw(opts.seed * 1000003 + 41);
    std::vector<unsigned> secret;
    std::vector<unsigned> visible;
    secret.reserve(opts.requests);
    visible.reserve(opts.requests);

    double sum_hit = 0.0, sum_miss = 0.0;
    std::size_t n_hit = 0, n_miss = 0;
    std::uint64_t miss_counter = 0;

    for (std::size_t r = 0; r < opts.requests; ++r) {
        const unsigned phase =
            static_cast<unsigned>((r / opts.phaseLen) % 2);
        const std::string key =
            phase == 0
                ? "leak:k" + std::to_string(draw.nextBelow(resident))
                : "leak:m" + std::to_string(miss_counter++);
        const std::size_t before = recorder.size();
        (void)store.get(key);
        store.drain();
        const std::size_t events = recorder.size() - before;
        secret.push_back(phase);
        visible.push_back(static_cast<unsigned>(events));
        if (phase == 0) {
            sum_hit += static_cast<double>(events);
            ++n_hit;
        } else {
            sum_miss += static_cast<double>(events);
            ++n_miss;
        }
    }
    store.service().setScheduleRecorder(nullptr);

    verify::LeakReport report;
    report.design = std::string("kv-") +
                    kvIndexModeName(opts.index);
    report.requests = opts.requests;
    report.meanVisibleLocal = n_hit ? sum_hit / n_hit : 0.0;
    report.meanVisibleScatter = n_miss ? sum_miss / n_miss : 0.0;
    report.mi = verify::estimateMutualInformation(secret, visible,
                                                  opts.mi);
    return report;
}

} // namespace secdimm::app
