/**
 * @file
 * Core vocabulary of the fault-injection & recovery subsystem: the
 * kinds of fault the injector can introduce, the modeled outcome of a
 * message crossing a faulty wire, the typed event a detection turns
 * into (instead of an abort), and the facade-level degradation
 * policy.  See docs/FAULTS.md for the fault model and the
 * obliviousness argument for the recovery protocols.
 */

#ifndef SECUREDIMM_FAULT_FAULT_TYPES_HH
#define SECUREDIMM_FAULT_FAULT_TYPES_HH

#include <cstdint>
#include <string>

namespace secdimm::fault
{

/**
 * What went wrong.  Injection sites follow the untrusted components
 * of the paper's threat model: DRAM devices (bit flips on reads, both
 * in the timing-layer dram::Channel and the functional
 * oram::BucketStore), the CPU<->SDIMM link (corrupt / drop / delay a
 * sealed frame), the secure buffer's execution engine (a stalled
 * PathExecutor), and the APPEND-side TransferQueue (a perturbed
 * entry).
 */
enum class FaultKind : std::uint8_t {
    DramBitFlip = 0, ///< read returns flipped bits; MAC/ECC detects
    LinkCorrupt,     ///< sealed frame body/MAC corrupted in flight
    LinkDrop,        ///< sealed frame silently lost in flight
    LinkDelay,       ///< sealed frame delivered late (after a timeout)
    ExecutorStall,   ///< PathExecutor start delayed by N cycles
    QueuePerturb,    ///< TransferQueue entry corrupted at rest
    WatchdogTimeout, ///< permanent fault: SDIMM missed every deadline
    ByzantineCorrupt,   ///< byzantine unit returned a garbled response
    ByzantineLostWrite, ///< byzantine unit ACKed an APPEND, dropped it
    ByzantineEquivocate,///< INDEP-SPLIT member disagreed with peers
    ByzantineConvict,   ///< mistrust score crossed the conviction bar
};

constexpr unsigned kNumFaultKinds = 11;

/** Stable lowercase snake_case name, used in fault.* metric names. */
const char *kindName(FaultKind k);

/**
 * Permanent (non-transient) fault sites.  Unlike the per-opportunity
 * rates, a permanent fault names one unit (SDIMM index in Independent
 * mode, group index in INDEP-SPLIT) and never heals: once active the
 * unit answers no PROBE and must be watchdog-detected and quarantined.
 */
enum class PermanentFaultKind : std::uint8_t {
    StuckAt = 0,    ///< dead from boot: never answers anything
    HardDeath,      ///< answers normally until access atAccess, then dies
    DegradedLatency ///< still correct, but every op pays latencyCycles
};

const char *permanentKindName(PermanentFaultKind k);

struct PermanentFault {
    PermanentFaultKind kind = PermanentFaultKind::HardDeath;
    /** SDIMM index (Independent) or group index (INDEP-SPLIT). */
    unsigned unit = 0;
    /** HardDeath: first 0-based access at which the unit is dead. */
    std::uint64_t atAccess = 0;
    /** DegradedLatency: extra cycles charged per op on this unit. */
    std::uint64_t latencyCycles = 0;
};

/**
 * A correlated failure group: several units sharing a failure domain
 * (same channel, same refresh domain, same power rail) that fail as
 * one campaign instead of independently.  Member j activates at
 * `atAccess + j * cascadeGapAccesses`: a gap of 0 is a simultaneous
 * burst (the spatial correlation the Independent design's
 * one-unit-at-a-time fault model never sees), a positive gap is a
 * temporal cascade that can land mid-recovery of the previous member
 * -- the re-entrancy case docs/FAULTS.md's chaos section is about.
 */
struct CorrelatedFailure {
    /** Units (SDIMM or group indices) sharing the failure domain. */
    std::vector<unsigned> units;
    PermanentFaultKind kind = PermanentFaultKind::HardDeath;
    /** Activation access of the FIRST member (0 for StuckAt). */
    std::uint64_t atAccess = 0;
    /** Accesses between successive member activations. */
    std::uint64_t cascadeGapAccesses = 0;
    /** DegradedLatency bursts: per-op tax of every member. */
    std::uint64_t latencyCycles = 0;
};

/**
 * Byzantine (wrong-but-authenticated-looking) unit behaviors.  Unlike
 * the crash faults above, a byzantine unit stays alive and on time
 * while returning *wrong* data: the watchdog never fires, and the
 * detect-and-retry loop would treat it as an endless transient.  The
 * mistrust scorer (docs/FAULTS.md, "Byzantine units") is what turns
 * these into convictions.
 */
enum class ByzantineFaultKind : std::uint8_t {
    /** Every response is garbled (its MAC never verifies). */
    PersistentCorrupt = 0,
    /** Lies on a seeded dutyCycle fraction of responses, answering
     *  honestly otherwise to stay under naive one-shot detection. */
    DutyCycleLiar,
    /** ACKs every APPEND but silently drops the payload; discovered
     *  only at read-back, attributed via the CPU-side write record. */
    LostWrite,
    /** INDEP-SPLIT member returns stale-but-self-consistent slices
     *  that disagree with its group peers. */
    Equivocate,
};

const char *byzantineKindName(ByzantineFaultKind k);

/**
 * One scripted byzantine unit.  Like PermanentFault, this names a
 * unit (SDIMM index in Independent mode, group index in INDEP-SPLIT)
 * rather than rolling per opportunity; the dutyCycle draw uses the
 * injector's dedicated byzantine RNG stream so arming a liar never
 * shifts the transient-fault stream.
 */
struct ByzantineFault {
    ByzantineFaultKind kind = ByzantineFaultKind::PersistentCorrupt;
    /** SDIMM index (Independent) or group index (INDEP-SPLIT). */
    unsigned unit = 0;
    /** Fraction of opportunities on which the unit lies, in [0, 1].
     *  PersistentCorrupt ignores this (always 1). */
    double dutyCycle = 1.0;
    /** First 0-based access at which the unit starts lying. */
    std::uint64_t fromAccess = 0;
};

/**
 * Modeled outcome of one message crossing a faulty channel.  Used
 * where the functional model has no real MAC on the wire (SplitOram's
 * internal CPU-channel transfers): outcome == Corrupted stands for
 * "the per-slice MAC check failed at the receiver".  Channels with a
 * real CMAC (LinkSession) corrupt real bytes instead and let the
 * cipher do the detecting.
 */
enum class WireOutcome : std::uint8_t {
    Delivered = 0, ///< arrived intact, first try
    Corrupted,     ///< arrived, but fails its integrity check
    Dropped,       ///< never arrived; receiver times out
    Delayed,       ///< arrives only after a timeout window
};

/**
 * A detection turned into data instead of an abort.  The injector
 * keeps a bounded log of these so tests can assert on the exact
 * recovery schedule.
 */
struct FaultEvent {
    FaultKind kind = FaultKind::DramBitFlip;
    std::string site;        ///< e.g. "sdimm0.fetch", "store.bucket"
    unsigned attempts = 0;   ///< retries consumed before resolution
    bool recovered = false;  ///< false => bounded retries exhausted
    std::uint64_t latency = 0; ///< recovery latency in retry steps
};

/**
 * Facade-level policy for what SecureMemorySystem does once a fault
 * is detected:
 *
 *  - FailStop:      no retries; first detection stops the system
 *                   (integrityOk() goes false, access returns zeros).
 *  - RetryThenStop: bounded detect-and-retry per FaultPlan.maxRetries;
 *                   only an exhausted retry budget stops the system.
 *  - Degraded:      like RetryThenStop, but an exhausted budget
 *                   quarantines the faulty SDIMM and routes new leaf
 *                   draws around it (Independent mode); see
 *                   docs/FAULTS.md for the declared leak.
 */
enum class DegradationPolicy : std::uint8_t {
    FailStop = 0,
    RetryThenStop,
    Degraded,
};

const char *policyName(DegradationPolicy p);

} // namespace secdimm::fault

#endif // SECUREDIMM_FAULT_FAULT_TYPES_HH
