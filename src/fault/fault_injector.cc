#include "fault/fault_injector.hh"

namespace secdimm::fault
{

namespace
{

/// Cap on the retained FaultEvent log; enough for any test to see the
/// whole schedule of a 10k-access campaign at ~1% rates.
constexpr std::size_t kMaxEvents = 4096;

std::size_t
idx(FaultKind k)
{
    return static_cast<std::size_t>(k);
}

} // namespace

const char *
kindName(FaultKind k)
{
    switch (k) {
    case FaultKind::DramBitFlip:
        return "dram_bit_flip";
    case FaultKind::LinkCorrupt:
        return "link_corrupt";
    case FaultKind::LinkDrop:
        return "link_drop";
    case FaultKind::LinkDelay:
        return "link_delay";
    case FaultKind::ExecutorStall:
        return "executor_stall";
    case FaultKind::QueuePerturb:
        return "queue_perturb";
    }
    return "unknown";
}

const char *
policyName(DegradationPolicy p)
{
    switch (p) {
    case DegradationPolicy::FailStop:
        return "fail_stop";
    case DegradationPolicy::RetryThenStop:
        return "retry_then_stop";
    case DegradationPolicy::Degraded:
        return "degraded";
    }
    return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan), rng_(plan.seed)
{
}

bool
FaultInjector::rollDramBitFlip()
{
    const bool hit = rng_.nextBool(plan_.dramBitFlipRate);
    if (hit)
        recordInjected(FaultKind::DramBitFlip);
    return hit;
}

WireOutcome
FaultInjector::rollLinkFault()
{
    /*
     * One draw per message regardless of outcome, so the stream
     * position -- and hence every later fault -- depends only on how
     * many messages were sent, never on their contents.
     */
    const double u = rng_.nextDouble();
    double acc = plan_.linkCorruptRate;
    if (u < acc) {
        recordInjected(FaultKind::LinkCorrupt);
        return WireOutcome::Corrupted;
    }
    acc += plan_.linkDropRate;
    if (u < acc) {
        recordInjected(FaultKind::LinkDrop);
        return WireOutcome::Dropped;
    }
    acc += plan_.linkDelayRate;
    if (u < acc) {
        recordInjected(FaultKind::LinkDelay);
        return WireOutcome::Delayed;
    }
    return WireOutcome::Delivered;
}

std::uint64_t
FaultInjector::rollExecutorStall()
{
    if (!rng_.nextBool(plan_.executorStallRate))
        return 0;
    recordInjected(FaultKind::ExecutorStall);
    return plan_.stallCycles;
}

bool
FaultInjector::rollQueuePerturb()
{
    const bool hit = rng_.nextBool(plan_.queuePerturbRate);
    if (hit)
        recordInjected(FaultKind::QueuePerturb);
    return hit;
}

void
FaultInjector::corruptBuffer(std::vector<std::uint8_t> &bytes)
{
    if (bytes.empty())
        return;
    const std::uint64_t bit = rng_.nextBelow(bytes.size() * 8);
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

void
FaultInjector::recordInjected(FaultKind k)
{
    ++injected_[idx(k)];
}

void
FaultInjector::recordDetected(FaultKind k)
{
    ++detected_[idx(k)];
}

void
FaultInjector::logEvent(FaultKind k, const std::string &site,
                        unsigned attempts, bool recoveredFlag)
{
    if (events_.size() >= kMaxEvents)
        events_.erase(events_.begin());
    FaultEvent e;
    e.kind = k;
    e.site = site;
    e.attempts = attempts;
    e.recovered = recoveredFlag;
    e.latency = attempts;
    events_.push_back(std::move(e));
}

void
FaultInjector::recordRecovered(FaultKind k, const std::string &site,
                               unsigned attempts)
{
    ++recovered_[idx(k)];
    retryCounts_.sample(attempts);
    recoveryLatency_.sample(attempts);
    logEvent(k, site, attempts, true);
}

void
FaultInjector::recordUnrecovered(FaultKind k, const std::string &site,
                                 unsigned attempts)
{
    ++unrecoveredTotal_;
    retryCounts_.sample(attempts);
    logEvent(k, site, attempts, false);
}

void
FaultInjector::recordDegraded()
{
    ++degraded_;
}

std::uint64_t
FaultInjector::injected(FaultKind k) const
{
    return injected_[idx(k)];
}

std::uint64_t
FaultInjector::detected(FaultKind k) const
{
    return detected_[idx(k)];
}

std::uint64_t
FaultInjector::recovered(FaultKind k) const
{
    return recovered_[idx(k)];
}

std::uint64_t
FaultInjector::injectedTotal() const
{
    std::uint64_t t = 0;
    for (auto v : injected_)
        t += v;
    return t;
}

std::uint64_t
FaultInjector::detectedTotal() const
{
    std::uint64_t t = 0;
    for (auto v : detected_)
        t += v;
    return t;
}

std::uint64_t
FaultInjector::recoveredTotal() const
{
    std::uint64_t t = 0;
    for (auto v : recovered_)
        t += v;
    return t;
}

void
FaultInjector::exportMetrics(util::MetricsRegistry &m,
                             const std::string &prefix) const
{
    m.setCounter(prefix + ".injected.total", injectedTotal());
    m.setCounter(prefix + ".detected.total", detectedTotal());
    m.setCounter(prefix + ".recovered.total", recoveredTotal());
    m.setCounter(prefix + ".unrecovered.total", unrecoveredTotal_);
    m.setCounter(prefix + ".degraded_accesses", degraded_);
    for (unsigned i = 0; i < kNumFaultKinds; ++i) {
        const auto k = static_cast<FaultKind>(i);
        const std::string base = prefix + "." + kindName(k);
        /*
         * Zero-count kinds are omitted (same convention as the
         * per-command bus metrics) to keep quiet campaigns small.
         */
        if (injected_[i])
            m.setCounter(base + ".injected", injected_[i]);
        if (detected_[i])
            m.setCounter(base + ".detected", detected_[i]);
        if (recovered_[i])
            m.setCounter(base + ".recovered", recovered_[i]);
    }
    if (retryCounts_.count())
        m.histogram(prefix + ".retry_count").merge(retryCounts_);
    if (recoveryLatency_.count())
        m.histogram(prefix + ".recovery_latency").merge(recoveryLatency_);
}

} // namespace secdimm::fault
