#include "fault/fault_injector.hh"

#include <algorithm>

namespace secdimm::fault
{

namespace
{

/// Cap on the retained FaultEvent log; enough for any test to see the
/// whole schedule of a 10k-access campaign at ~1% rates.
constexpr std::size_t kMaxEvents = 4096;

std::size_t
idx(FaultKind k)
{
    return static_cast<std::size_t>(k);
}

} // namespace

const char *
kindName(FaultKind k)
{
    switch (k) {
    case FaultKind::DramBitFlip:
        return "dram_bit_flip";
    case FaultKind::LinkCorrupt:
        return "link_corrupt";
    case FaultKind::LinkDrop:
        return "link_drop";
    case FaultKind::LinkDelay:
        return "link_delay";
    case FaultKind::ExecutorStall:
        return "executor_stall";
    case FaultKind::QueuePerturb:
        return "queue_perturb";
    case FaultKind::WatchdogTimeout:
        return "watchdog_timeout";
    case FaultKind::ByzantineCorrupt:
        return "byzantine_corrupt";
    case FaultKind::ByzantineLostWrite:
        return "byzantine_lost_write";
    case FaultKind::ByzantineEquivocate:
        return "byzantine_equivocate";
    case FaultKind::ByzantineConvict:
        return "byzantine_convict";
    }
    return "unknown";
}

const char *
byzantineKindName(ByzantineFaultKind k)
{
    switch (k) {
    case ByzantineFaultKind::PersistentCorrupt:
        return "persistent_corrupt";
    case ByzantineFaultKind::DutyCycleLiar:
        return "duty_cycle_liar";
    case ByzantineFaultKind::LostWrite:
        return "lost_write";
    case ByzantineFaultKind::Equivocate:
        return "equivocate";
    }
    return "unknown";
}

const char *
permanentKindName(PermanentFaultKind k)
{
    switch (k) {
    case PermanentFaultKind::StuckAt:
        return "stuck_at";
    case PermanentFaultKind::HardDeath:
        return "hard_death";
    case PermanentFaultKind::DegradedLatency:
        return "degraded_latency";
    }
    return "unknown";
}

const char *
policyName(DegradationPolicy p)
{
    switch (p) {
    case DegradationPolicy::FailStop:
        return "fail_stop";
    case DegradationPolicy::RetryThenStop:
        return "retry_then_stop";
    case DegradationPolicy::Degraded:
        return "degraded";
    }
    return "unknown";
}

FaultInjector::FaultInjector(const FaultPlan &plan)
    : plan_(plan), rng_(plan.seed),
      // Derived, not shared: byzantine duty-cycle draws must never
      // advance the transient stream (or vice versa), so arming a
      // liar leaves every other fault position bit-identical.
      byzRng_(plan.seed * 0x9e3779b97f4a7c15ull + 0xb12au)
{
    auto addSite = [this](const PermanentFault &f, bool correlated) {
        PermanentState s;
        s.fault = f;
        s.correlated = correlated;
        /*
         * StuckAt and DegradedLatency are live from boot; a HardDeath
         * activates during noteAccess().  Only the dead kinds open a
         * WatchdogTimeout ledger episode -- DegradedLatency is a
         * timing-only fault and stays out of the detected/recovered
         * identity entirely.
         */
        s.active = f.kind != PermanentFaultKind::HardDeath;
        if (f.kind == PermanentFaultKind::StuckAt)
            recordInjected(FaultKind::WatchdogTimeout);
        if (correlated && s.active)
            ++correlatedActivations_;
        permanent_.push_back(s);
    };

    for (const PermanentFault &f : plan_.permanentFaults)
        addSite(f, false);

    /*
     * A correlated group is scripted data, exactly like the
     * independent sites: member j of group g expands into one
     * permanent site activating at atAccess + j * cascadeGapAccesses.
     * The expansion order is the plan order, so the activation
     * schedule stays a pure function of the plan.
     */
    correlatedGroups_ = plan_.correlatedFailures.size();
    for (const CorrelatedFailure &g : plan_.correlatedFailures) {
        correlatedUnits_ += g.units.size();
        for (std::size_t j = 0; j < g.units.size(); ++j) {
            PermanentFault f;
            f.kind = g.kind;
            f.unit = g.units[j];
            f.atAccess = g.atAccess + j * g.cascadeGapAccesses;
            f.latencyCycles = g.latencyCycles;
            addSite(f, true);
        }
    }
}

void
FaultInjector::noteAccess()
{
    ++accessIndex_;
    for (PermanentState &s : permanent_) {
        if (s.active || s.fault.kind != PermanentFaultKind::HardDeath)
            continue;
        if (accessIndex_ > s.fault.atAccess) {
            s.active = true;
            recordInjected(FaultKind::WatchdogTimeout);
            if (s.correlated)
                ++correlatedActivations_;
        }
    }
}

bool
FaultInjector::unitDead(unsigned unit) const
{
    for (const PermanentState &s : permanent_) {
        if (s.active && s.fault.unit == unit &&
            s.fault.kind != PermanentFaultKind::DegradedLatency)
            return true;
    }
    return false;
}

std::uint64_t
FaultInjector::unitLatencyPenalty(unsigned unit) const
{
    std::uint64_t cycles = 0;
    for (const PermanentState &s : permanent_) {
        if (s.active && s.fault.unit == unit &&
            s.fault.kind == PermanentFaultKind::DegradedLatency)
            cycles += s.fault.latencyCycles;
    }
    return cycles;
}

void
FaultInjector::markPermanentDetected(unsigned unit)
{
    for (PermanentState &s : permanent_) {
        if (!s.active || s.watchdogDetected || s.fault.unit != unit ||
            s.fault.kind == PermanentFaultKind::DegradedLatency)
            continue;
        s.watchdogDetected = true;
        recordDetected(FaultKind::WatchdogTimeout);
        return;
    }
}

void
FaultInjector::noteUnitTax(unsigned unit, std::uint64_t cycles)
{
    RetireState &r = retire_[unit];
    const double a = std::clamp(plan_.retireEwmaAlpha, 0.0, 1.0);
    r.ewma = a * static_cast<double>(cycles) + (1.0 - a) * r.ewma;
    if (plan_.retireTaxThresholdCycles == 0 || r.retired)
        return;
    if (r.ewma > static_cast<double>(plan_.retireTaxThresholdCycles)) {
        ++r.aboveStreak;
        if (!r.candidate &&
            r.aboveStreak >= plan_.retireHysteresisAccesses) {
            r.candidate = true;
            ++retireCandidates_;
        }
    } else {
        // Hysteresis: a dip below threshold resets the streak, so a
        // transient spike never retires a healthy unit.
        r.aboveStreak = 0;
        r.candidate = false;
    }
}

bool
FaultInjector::retirementDue(unsigned unit) const
{
    const auto it = retire_.find(unit);
    return it != retire_.end() && it->second.candidate &&
           !it->second.retired;
}

void
FaultInjector::markRetired(unsigned unit)
{
    RetireState &r = retire_[unit];
    if (r.retired)
        return;
    r.retired = true;
    ++retiredUnits_;
}

bool
FaultInjector::unitRetired(unsigned unit) const
{
    const auto it = retire_.find(unit);
    return it != retire_.end() && it->second.retired;
}

double
FaultInjector::unitTaxEwma(unsigned unit) const
{
    const auto it = retire_.find(unit);
    return it == retire_.end() ? 0.0 : it->second.ewma;
}

const ByzantineFault *
FaultInjector::activeByzantine(unsigned unit,
                               ByzantineFaultKind kind) const
{
    for (const ByzantineFault &b : plan_.byzantineFaults) {
        if (b.unit == unit && b.kind == kind &&
            accessIndex_ > b.fromAccess)
            return &b;
    }
    return nullptr;
}

bool
FaultInjector::unitByzantine(unsigned unit) const
{
    for (const ByzantineFault &b : plan_.byzantineFaults) {
        if (b.unit == unit && accessIndex_ > b.fromAccess)
            return true;
    }
    return false;
}

bool
FaultInjector::rollByzantineCorrupt(unsigned unit)
{
    /*
     * Whether a draw happens depends only on the plan and the access
     * index (both public), so the byzantine stream position is a pure
     * function of (plan, opportunity index) -- same discipline as the
     * transient rolls, on a separate stream.
     */
    if (activeByzantine(unit, ByzantineFaultKind::PersistentCorrupt)) {
        recordInjected(FaultKind::ByzantineCorrupt);
        return true;
    }
    const ByzantineFault *liar =
        activeByzantine(unit, ByzantineFaultKind::DutyCycleLiar);
    if (!liar)
        return false;
    const bool lie = byzRng_.nextBool(liar->dutyCycle);
    if (lie)
        recordInjected(FaultKind::ByzantineCorrupt);
    return lie;
}

bool
FaultInjector::rollByzantineLostWrite(unsigned unit)
{
    const ByzantineFault *b =
        activeByzantine(unit, ByzantineFaultKind::LostWrite);
    if (!b)
        return false;
    const bool drop = byzRng_.nextBool(b->dutyCycle);
    if (drop)
        recordInjected(FaultKind::ByzantineLostWrite);
    return drop;
}

bool
FaultInjector::rollByzantineEquivocate(unsigned unit)
{
    const ByzantineFault *b =
        activeByzantine(unit, ByzantineFaultKind::Equivocate);
    if (!b)
        return false;
    const bool lie = byzRng_.nextBool(b->dutyCycle);
    if (lie)
        recordInjected(FaultKind::ByzantineEquivocate);
    return lie;
}

void
FaultInjector::noteLostWrite(std::uint64_t addr, unsigned unit)
{
    auto &entry = lostWrites_[addr];
    entry.first = unit;
    ++entry.second;
}

void
FaultInjector::clearLostWrite(std::uint64_t addr)
{
    lostWrites_.erase(addr);
}

std::optional<std::pair<unsigned, unsigned>>
FaultInjector::takeLostWrite(std::uint64_t addr)
{
    const auto it = lostWrites_.find(addr);
    if (it == lostWrites_.end())
        return std::nullopt;
    const auto pending = it->second;
    lostWrites_.erase(it);
    return pending;
}

void
FaultInjector::noteMistrust(unsigned unit, double failures)
{
    MistrustState &s = mistrust_[unit];
    const double a = std::clamp(plan_.mistrustEwmaAlpha, 0.0, 1.0);
    s.ewma = a * failures + (1.0 - a) * s.ewma;
    s.totalBlame += failures;
    if (!mistrustArmed() || s.convicted)
        return;
    if (s.ewma > plan_.mistrustConvictThreshold &&
        s.totalBlame >= static_cast<double>(plan_.mistrustMinEvidence)) {
        ++s.aboveStreak;
        if (!s.candidate &&
            s.aboveStreak >= plan_.mistrustHysteresisAccesses) {
            s.candidate = true;
            ++mistrustCandidates_;
        }
    } else {
        // Hysteresis: honest transients decay the score back under
        // the bar before the streak completes, so a noisy-but-honest
        // unit is never convicted.
        s.aboveStreak = 0;
        s.candidate = false;
    }
}

bool
FaultInjector::convictionDue(unsigned unit) const
{
    const auto it = mistrust_.find(unit);
    return it != mistrust_.end() && it->second.candidate &&
           !it->second.convicted;
}

void
FaultInjector::markConvicted(unsigned unit)
{
    MistrustState &s = mistrust_[unit];
    if (s.convicted)
        return;
    s.convicted = true;
    ++convictedUnits_;
    // One ByzantineConvict episode: injected+detected here, paired by
    // the caller with exactly one recovered or unrecovered record.
    recordInjected(FaultKind::ByzantineConvict);
    recordDetected(FaultKind::ByzantineConvict);
}

bool
FaultInjector::unitConvicted(unsigned unit) const
{
    const auto it = mistrust_.find(unit);
    return it != mistrust_.end() && it->second.convicted;
}

double
FaultInjector::mistrustScore(unsigned unit) const
{
    const auto it = mistrust_.find(unit);
    return it == mistrust_.end() ? 0.0 : it->second.ewma;
}

bool
FaultInjector::rollDramBitFlip()
{
    const bool hit = rng_.nextBool(plan_.dramBitFlipRate);
    if (hit)
        recordInjected(FaultKind::DramBitFlip);
    return hit;
}

WireOutcome
FaultInjector::rollLinkFault()
{
    /*
     * One draw per message regardless of outcome, so the stream
     * position -- and hence every later fault -- depends only on how
     * many messages were sent, never on their contents.
     */
    const double u = rng_.nextDouble();
    double acc = plan_.linkCorruptRate;
    if (u < acc) {
        recordInjected(FaultKind::LinkCorrupt);
        return WireOutcome::Corrupted;
    }
    acc += plan_.linkDropRate;
    if (u < acc) {
        recordInjected(FaultKind::LinkDrop);
        return WireOutcome::Dropped;
    }
    acc += plan_.linkDelayRate;
    if (u < acc) {
        recordInjected(FaultKind::LinkDelay);
        return WireOutcome::Delayed;
    }
    return WireOutcome::Delivered;
}

std::uint64_t
FaultInjector::rollExecutorStall()
{
    if (!rng_.nextBool(plan_.executorStallRate))
        return 0;
    recordInjected(FaultKind::ExecutorStall);
    return plan_.stallCycles;
}

bool
FaultInjector::rollQueuePerturb()
{
    const bool hit = rng_.nextBool(plan_.queuePerturbRate);
    if (hit)
        recordInjected(FaultKind::QueuePerturb);
    return hit;
}

void
FaultInjector::corruptBuffer(std::vector<std::uint8_t> &bytes)
{
    corruptBuffer(bytes.data(), bytes.size());
}

void
FaultInjector::corruptBuffer(std::uint8_t *bytes, std::size_t len)
{
    if (len == 0)
        return;
    const std::uint64_t bit = rng_.nextBelow(len * 8);
    bytes[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

void
FaultInjector::recordInjected(FaultKind k)
{
    ++injected_[idx(k)];
}

void
FaultInjector::recordDetected(FaultKind k)
{
    ++detected_[idx(k)];
}

void
FaultInjector::logEvent(FaultKind k, const std::string &site,
                        unsigned attempts, bool recoveredFlag)
{
    if (events_.size() >= kMaxEvents)
        events_.erase(events_.begin());
    FaultEvent e;
    e.kind = k;
    e.site = site;
    e.attempts = attempts;
    e.recovered = recoveredFlag;
    e.latency = attempts;
    events_.push_back(std::move(e));
}

void
FaultInjector::recordRecovered(FaultKind k, const std::string &site,
                               unsigned attempts)
{
    ++recovered_[idx(k)];
    retryCounts_.sample(attempts);
    recoveryLatency_.sample(attempts);
    logEvent(k, site, attempts, true);
}

void
FaultInjector::recordUnrecovered(FaultKind k, const std::string &site,
                                 unsigned attempts)
{
    ++unrecoveredTotal_;
    retryCounts_.sample(attempts);
    logEvent(k, site, attempts, false);
}

void
FaultInjector::recordDegraded()
{
    ++degraded_;
}

void
FaultInjector::recordWatchdogProbe(std::uint64_t backoff_cycles)
{
    ++watchdogProbes_;
    watchdogWait_ += backoff_cycles;
    recoveryCycles_ += backoff_cycles;
}

void
FaultInjector::recordQuarantine()
{
    ++quarantined_;
}

void
FaultInjector::recordZeroSurvivorFailStop()
{
    ++zeroSurvivorStops_;
}

void
FaultInjector::recordEvacuation(std::uint64_t blocks, std::uint64_t appends)
{
    evacuatedBlocks_ += blocks;
    evacAppends_ += appends;
}

void
FaultInjector::addDegradedLatencyCycles(std::uint64_t cycles)
{
    degradedCycles_ += cycles;
}

void
FaultInjector::addRecoveryCycles(std::uint64_t cycles)
{
    recoveryCycles_ += cycles;
}

std::uint64_t
FaultInjector::injected(FaultKind k) const
{
    return injected_[idx(k)];
}

std::uint64_t
FaultInjector::detected(FaultKind k) const
{
    return detected_[idx(k)];
}

std::uint64_t
FaultInjector::recovered(FaultKind k) const
{
    return recovered_[idx(k)];
}

std::uint64_t
FaultInjector::injectedTotal() const
{
    std::uint64_t t = 0;
    for (auto v : injected_)
        t += v;
    return t;
}

std::uint64_t
FaultInjector::detectedTotal() const
{
    std::uint64_t t = 0;
    for (auto v : detected_)
        t += v;
    return t;
}

std::uint64_t
FaultInjector::recoveredTotal() const
{
    std::uint64_t t = 0;
    for (auto v : recovered_)
        t += v;
    return t;
}

void
FaultInjector::exportMetrics(util::MetricsRegistry &m,
                             const std::string &prefix) const
{
    m.setCounter(prefix + ".injected.total", injectedTotal());
    m.setCounter(prefix + ".detected.total", detectedTotal());
    m.setCounter(prefix + ".recovered.total", recoveredTotal());
    m.setCounter(prefix + ".unrecovered.total", unrecoveredTotal_);
    m.setCounter(prefix + ".degraded_accesses", degraded_);
    m.setCounter(prefix + ".watchdog_probes", watchdogProbes_);
    m.setCounter(prefix + ".watchdog_backoff_cycles", watchdogWait_);
    m.setCounter(prefix + ".quarantined_sdimms", quarantined_);
    m.setCounter(prefix + ".evacuated_blocks", evacuatedBlocks_);
    m.setCounter(prefix + ".evacuation_appends", evacAppends_);
    m.setCounter(prefix + ".degraded_latency_cycles", degradedCycles_);
    m.setCounter(prefix + ".recovery_cycles", recoveryCycles_);
    /*
     * Chaos-layer counters are emitted only when nonzero so quiet
     * (uncorrelated, no-retirement) campaigns keep their exact
     * pre-chaos metric surface.
     */
    if (correlatedGroups_) {
        m.setCounter(prefix + ".correlated_groups", correlatedGroups_);
        m.setCounter(prefix + ".correlated_units", correlatedUnits_);
        m.setCounter(prefix + ".correlated_activations",
                     correlatedActivations_);
    }
    if (zeroSurvivorStops_)
        m.setCounter(prefix + ".zero_survivor_failstops",
                     zeroSurvivorStops_);
    if (!plan_.byzantineFaults.empty())
        m.setCounter(prefix + ".byzantine_units",
                     plan_.byzantineFaults.size());
    if (mistrustCandidates_)
        m.setCounter("mistrust.candidates", mistrustCandidates_);
    if (convictedUnits_)
        m.setCounter("mistrust.convictions", convictedUnits_);
    for (const auto &[unit, s] : mistrust_) {
        if (s.ewma > 0.0)
            m.setGauge("mistrust.unit" + std::to_string(unit) +
                           ".score",
                       s.ewma);
    }
    if (retireCandidates_)
        m.setCounter("retire.candidates", retireCandidates_);
    if (retiredUnits_)
        m.setCounter("retire.retired_units", retiredUnits_);
    for (const auto &[unit, r] : retire_) {
        if (r.ewma > 0.0)
            m.setGauge("retire.unit" + std::to_string(unit) +
                           ".tax_ewma",
                       r.ewma);
    }
    for (unsigned i = 0; i < kNumFaultKinds; ++i) {
        const auto k = static_cast<FaultKind>(i);
        const std::string base = prefix + "." + kindName(k);
        /*
         * Zero-count kinds are omitted (same convention as the
         * per-command bus metrics) to keep quiet campaigns small.
         */
        if (injected_[i])
            m.setCounter(base + ".injected", injected_[i]);
        if (detected_[i])
            m.setCounter(base + ".detected", detected_[i]);
        if (recovered_[i])
            m.setCounter(base + ".recovered", recovered_[i]);
    }
    if (retryCounts_.count())
        m.histogram(prefix + ".retry_count").merge(retryCounts_);
    if (recoveryLatency_.count())
        m.histogram(prefix + ".recovery_latency").merge(recoveryLatency_);
}

} // namespace secdimm::fault
