/**
 * @file
 * FaultInjector: the single deterministic source of faults and the
 * single ledger of their detection/recovery.
 *
 * Obliviousness contract (docs/FAULTS.md): every roll*() entry point
 * draws from the injector's own Rng exactly once per opportunity
 * (message sent, bucket read, op submitted, entry popped), and the
 * caller must invoke it unconditionally at that site -- never gated
 * on addresses, block contents, or any other secret.  Fault positions
 * are then a pure function of (plan.seed, opportunity index), so the
 * recovery schedule they trigger is data-independent by construction;
 * tests/verify/test_fault_obliviousness.cc checks the resulting
 * traces against the PR 2 indistinguishability checker.
 *
 * One injector instance is shared (raw pointer, not owned) by every
 * component of one system instance.  All hooks are nullable: a
 * component with no injector behaves exactly as before this
 * subsystem existed.
 */

#ifndef SECUREDIMM_FAULT_FAULT_INJECTOR_HH
#define SECUREDIMM_FAULT_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault_plan.hh"
#include "fault/fault_types.hh"
#include "util/metrics.hh"
#include "util/rng.hh"

namespace secdimm::fault
{

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    const FaultPlan &plan() const { return plan_; }
    bool enabled() const { return plan_.enabled(); }
    unsigned maxRetries() const { return plan_.maxRetries; }

    /* --- injection rolls (one RNG draw each; see file comment) ---- */

    /** Roll a DRAM read bit flip; true == corrupt this read. */
    bool rollDramBitFlip();

    /** Roll the fate of one sealed link message. */
    WireOutcome rollLinkFault();

    /** Roll an executor stall; returns 0 or plan.stallCycles. */
    std::uint64_t rollExecutorStall();

    /** Roll a TransferQueue entry perturbation on pop. */
    bool rollQueuePerturb();

    /** Flip one uniformly chosen bit of @p bytes (no-op if empty). */
    void corruptBuffer(std::vector<std::uint8_t> &bytes);

    /* --- accounting ----------------------------------------------- */

    void recordDetected(FaultKind k);
    void recordRecovered(FaultKind k, const std::string &site,
                         unsigned attempts);
    void recordUnrecovered(FaultKind k, const std::string &site,
                           unsigned attempts);
    void recordDegraded();

    std::uint64_t injected(FaultKind k) const;
    std::uint64_t detected(FaultKind k) const;
    std::uint64_t recovered(FaultKind k) const;
    std::uint64_t unrecoveredTotal() const { return unrecoveredTotal_; }
    std::uint64_t injectedTotal() const;
    std::uint64_t detectedTotal() const;
    std::uint64_t recoveredTotal() const;
    std::uint64_t degradedAccesses() const { return degraded_; }

    /** Bounded log of resolved fault events (oldest dropped first). */
    const std::vector<FaultEvent> &events() const { return events_; }

    /** Export under @p prefix (default namespace is "fault"). */
    void exportMetrics(util::MetricsRegistry &m,
                       const std::string &prefix = "fault") const;

  private:
    void recordInjected(FaultKind k);
    void logEvent(FaultKind k, const std::string &site, unsigned attempts,
                  bool recoveredFlag);

    FaultPlan plan_;
    Rng rng_;
    std::array<std::uint64_t, kNumFaultKinds> injected_{};
    std::array<std::uint64_t, kNumFaultKinds> detected_{};
    std::array<std::uint64_t, kNumFaultKinds> recovered_{};
    std::uint64_t unrecoveredTotal_ = 0;
    std::uint64_t degraded_ = 0;
    util::LogHistogram retryCounts_;
    util::LogHistogram recoveryLatency_;
    std::vector<FaultEvent> events_;
};

} // namespace secdimm::fault

#endif // SECUREDIMM_FAULT_FAULT_INJECTOR_HH
