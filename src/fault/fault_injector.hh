/**
 * @file
 * FaultInjector: the single deterministic source of faults and the
 * single ledger of their detection/recovery.
 *
 * Obliviousness contract (docs/FAULTS.md): every roll*() entry point
 * draws from the injector's own Rng exactly once per opportunity
 * (message sent, bucket read, op submitted, entry popped), and the
 * caller must invoke it unconditionally at that site -- never gated
 * on addresses, block contents, or any other secret.  Fault positions
 * are then a pure function of (plan.seed, opportunity index), so the
 * recovery schedule they trigger is data-independent by construction;
 * tests/verify/test_fault_obliviousness.cc checks the resulting
 * traces against the PR 2 indistinguishability checker.
 *
 * One injector instance is shared (raw pointer, not owned) by every
 * component of one system instance.  All hooks are nullable: a
 * component with no injector behaves exactly as before this
 * subsystem existed.
 */

#ifndef SECUREDIMM_FAULT_FAULT_INJECTOR_HH
#define SECUREDIMM_FAULT_FAULT_INJECTOR_HH

#include <array>
#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_plan.hh"
#include "fault/fault_types.hh"
#include "util/metrics.hh"
#include "util/rng.hh"

namespace secdimm::fault
{

class FaultInjector
{
  public:
    explicit FaultInjector(const FaultPlan &plan);

    const FaultPlan &plan() const { return plan_; }
    bool enabled() const { return plan_.enabled(); }
    unsigned maxRetries() const { return plan_.maxRetries; }

    /* --- injection rolls (one RNG draw each; see file comment) ---- */

    /** Roll a DRAM read bit flip; true == corrupt this read. */
    bool rollDramBitFlip();

    /** Roll the fate of one sealed link message. */
    WireOutcome rollLinkFault();

    /** Roll an executor stall; returns 0 or plan.stallCycles. */
    std::uint64_t rollExecutorStall();

    /** Roll a TransferQueue entry perturbation on pop. */
    bool rollQueuePerturb();

    /** Flip one uniformly chosen bit of @p bytes (no-op if empty). */
    void corruptBuffer(std::vector<std::uint8_t> &bytes);

    /** Same, over a raw span (e.g. one slot of a batch-read arena). */
    void corruptBuffer(std::uint8_t *bytes, std::size_t len);

    /* --- permanent faults ----------------------------------------- */

    /**
     * Advance the per-access clock.  HardDeath sites whose atAccess
     * has passed become active here (and count as injected, opening a
     * WatchdogTimeout episode the watchdog must close).  Call once at
     * the top of every protocol access.
     */
    void noteAccess();
    std::uint64_t accessIndex() const { return accessIndex_; }

    /** Active StuckAt/HardDeath on @p unit: answers nothing. */
    bool unitDead(unsigned unit) const;

    /** Active DegradedLatency penalty for @p unit (0 when none). */
    std::uint64_t unitLatencyPenalty(unsigned unit) const;

    /**
     * Close the injected->detected pairing for @p unit's permanent
     * fault: exactly one WatchdogTimeout detection per site, recorded
     * when the watchdog exhausts its PROBE budget.  No-op if the unit
     * has no active undetected StuckAt/HardDeath.
     */
    void markPermanentDetected(unsigned unit);

    /* --- byzantine faults ------------------------------------------ */

    /**
     * Any scripted byzantine behavior currently active on @p unit
     * (accessIndex past the entry's fromAccess).  Activity is a pure
     * function of (plan, access index) -- public data, never secrets.
     */
    bool unitByzantine(unsigned unit) const;

    /** Scripted byzantine units in the plan (for metrics/tests). */
    std::uint64_t byzantineUnits() const
    {
        return plan_.byzantineFaults.size();
    }

    /**
     * Roll whether @p unit garbles THIS response.  Draws from the
     * dedicated byzantine RNG stream exactly once per opportunity
     * whenever the unit has an active PersistentCorrupt or
     * DutyCycleLiar script (PersistentCorrupt always lies); returns
     * false without drawing when it has neither.  Records one
     * injected ByzantineCorrupt per lie.
     */
    bool rollByzantineCorrupt(unsigned unit);

    /** Roll whether @p unit drops THIS real APPEND payload after
     *  ACKing it (active LostWrite script only).  Records one
     *  injected ByzantineLostWrite per dropped payload. */
    bool rollByzantineLostWrite(unsigned unit);

    /** Roll whether INDEP-SPLIT group @p unit equivocates on THIS
     *  access (active Equivocate script only).  Records one injected
     *  ByzantineEquivocate per lie. */
    bool rollByzantineEquivocate(unsigned unit);

    /**
     * A LostWrite unit ACKed and dropped @p addr's real APPEND
     * payload.  The entry stands in for the PMMAC freshness state a
     * real deployment keeps CPU-side (per-block counters): the
     * read-back audit deterministically discovers the stale chain,
     * exactly as a counter-mirror mismatch would.
     */
    void noteLostWrite(std::uint64_t addr, unsigned unit);

    /** A fresh real APPEND for @p addr landed somewhere: the pending
     *  lost-write record (if any) is superseded. */
    void clearLostWrite(std::uint64_t addr);

    /**
     * Read-back audit: pending dropped writes for @p addr as
     * (culprit unit, drop count), erasing the record -- each drop is
     * detected exactly once.  nullopt when nothing is pending.
     */
    std::optional<std::pair<unsigned, unsigned>>
    takeLostWrite(std::uint64_t addr);

    /* --- mistrust scoring ------------------------------------------ */

    /** Conviction armed (plan.mistrustConvictThreshold > 0). */
    bool mistrustArmed() const
    {
        return plan_.mistrustConvictThreshold > 0.0;
    }

    /**
     * Feed one access's attributed integrity-failure count for
     * @p unit into its mistrust EWMA (mistrust.unitN.score).  Call
     * once per access per live unit, with 0 for a clean access --
     * honest units decay, liars accrue.  Conviction arms only when
     * plan.mistrustConvictThreshold > 0: the score must then sit
     * above the threshold for plan.mistrustHysteresisAccesses
     * CONSECUTIVE accesses before convictionDue() goes true.
     */
    void noteMistrust(unsigned unit, double failures);

    /** Hysteresis satisfied and the unit not yet convicted. */
    bool convictionDue(unsigned unit) const;

    /** The protocol convicted @p unit: one ByzantineConvict episode
     *  is opened (injected + detected) for the caller to pair with a
     *  recovered (evacuation succeeded) or unrecovered (last
     *  survivor) record, keeping the ledger identity exact. */
    void markConvicted(unsigned unit);

    bool unitConvicted(unsigned unit) const;
    double mistrustScore(unsigned unit) const;
    std::uint64_t convictedUnits() const { return convictedUnits_; }

    /* --- proactive retirement -------------------------------------- */

    /**
     * Feed one access's latency tax (cycles of DegradedLatency
     * penalty charged on @p unit) into the unit's EWMA tracker.
     * Retirement arms only when plan.retireTaxThresholdCycles > 0:
     * the EWMA must then sit above the threshold for
     * plan.retireHysteresisAccesses CONSECUTIVE accesses before
     * retirementDue() goes true.  Call once per access per live unit.
     */
    void noteUnitTax(unsigned unit, std::uint64_t cycles);

    /** Hysteresis satisfied and the unit not yet retired. */
    bool retirementDue(unsigned unit) const;

    /** The protocol evacuated @p unit proactively (ledger-neutral:
     *  a timing tax is not a detected fault). */
    void markRetired(unsigned unit);

    bool unitRetired(unsigned unit) const;
    double unitTaxEwma(unsigned unit) const;
    std::uint64_t retiredUnits() const { return retiredUnits_; }
    std::uint64_t retireCandidates() const { return retireCandidates_; }

    /* --- correlated campaign introspection ------------------------- */

    std::uint64_t correlatedGroups() const { return correlatedGroups_; }
    std::uint64_t correlatedUnits() const { return correlatedUnits_; }
    /** Correlated permanent sites that have gone active so far. */
    std::uint64_t correlatedActivations() const
    {
        return correlatedActivations_;
    }

    /* --- accounting ----------------------------------------------- */

    void recordDetected(FaultKind k);
    void recordRecovered(FaultKind k, const std::string &site,
                         unsigned attempts);
    void recordUnrecovered(FaultKind k, const std::string &site,
                           unsigned attempts);
    void recordDegraded();

    /** One watchdog PROBE issued; @p backoff_cycles waited after it. */
    void recordWatchdogProbe(std::uint64_t backoff_cycles);
    /** One unit quarantined (SDIMM or group; monotone counter). */
    void recordQuarantine();
    /** Quarantining would leave zero survivors: the system fell back
     *  to FailStop instead of dummy-padding an evacuation into
     *  nothing.  Distinct ledger entry (see docs/FAULTS.md). */
    void recordZeroSurvivorFailStop();
    std::uint64_t zeroSurvivorFailStops() const
    {
        return zeroSurvivorStops_;
    }
    /** One completed evacuation: @p blocks live blocks drained via
     *  @p appends dummy-padded APPENDs. */
    void recordEvacuation(std::uint64_t blocks, std::uint64_t appends);
    /** Timing layer: cycles lost to a DegradedLatency unit. */
    void addDegradedLatencyCycles(std::uint64_t cycles);
    /** Timing layer: cycles spent on backoff waits and evacuation. */
    void addRecoveryCycles(std::uint64_t cycles);

    std::uint64_t watchdogProbes() const { return watchdogProbes_; }
    std::uint64_t watchdogBackoffCycles() const { return watchdogWait_; }
    std::uint64_t quarantinedUnits() const { return quarantined_; }
    std::uint64_t evacuatedBlocks() const { return evacuatedBlocks_; }
    std::uint64_t evacuationAppends() const { return evacAppends_; }
    std::uint64_t degradedLatencyCycles() const { return degradedCycles_; }
    std::uint64_t recoveryCycles() const { return recoveryCycles_; }

    std::uint64_t injected(FaultKind k) const;
    std::uint64_t detected(FaultKind k) const;
    std::uint64_t recovered(FaultKind k) const;
    std::uint64_t unrecoveredTotal() const { return unrecoveredTotal_; }
    std::uint64_t injectedTotal() const;
    std::uint64_t detectedTotal() const;
    std::uint64_t recoveredTotal() const;
    std::uint64_t degradedAccesses() const { return degraded_; }

    /** Bounded log of resolved fault events (oldest dropped first). */
    const std::vector<FaultEvent> &events() const { return events_; }

    /** Export under @p prefix (default namespace is "fault"). */
    void exportMetrics(util::MetricsRegistry &m,
                       const std::string &prefix = "fault") const;

  private:
    void recordInjected(FaultKind k);
    void logEvent(FaultKind k, const std::string &site, unsigned attempts,
                  bool recoveredFlag);

    /** One scripted permanent fault and its activation/detection
     *  state; the ledger sees exactly one injected and at most one
     *  detected WatchdogTimeout per StuckAt/HardDeath entry.
     *  Correlated-group members expand into one entry each, tagged so
     *  activations can be counted per campaign. */
    struct PermanentState {
        PermanentFault fault;
        bool active = false;
        bool watchdogDetected = false;
        bool correlated = false;
    };

    /** Per-unit latency-tax EWMA + hysteresis for retirement. */
    struct RetireState {
        double ewma = 0.0;
        unsigned aboveStreak = 0;
        bool candidate = false;
        bool retired = false;
    };

    /** Per-unit mistrust EWMA + hysteresis for byzantine conviction
     *  (same shape as RetireState; the tracked quantity is attributed
     *  integrity failures per access instead of latency cycles). */
    struct MistrustState {
        double ewma = 0.0;
        /** Lifetime attributed failures: the evidence floor
         *  (plan.mistrustMinEvidence) reads this, so a couple of
         *  unluckily adjacent transients can never convict no matter
         *  how the EWMA streak lands. */
        double totalBlame = 0.0;
        unsigned aboveStreak = 0;
        bool candidate = false;
        bool convicted = false;
    };

    /** Active byzantine script of @p kind on @p unit, or nullptr. */
    const ByzantineFault *activeByzantine(unsigned unit,
                                          ByzantineFaultKind kind) const;

    FaultPlan plan_;
    Rng rng_;
    /** Dedicated stream for byzantine duty-cycle draws: arming a liar
     *  must not shift the transient-fault stream positions. */
    Rng byzRng_;
    std::vector<PermanentState> permanent_;
    std::map<unsigned, RetireState> retire_;
    std::map<unsigned, MistrustState> mistrust_;
    /** Pending dropped-write ground truth: addr -> (culprit unit,
     *  drop count).  See noteLostWrite(). */
    std::map<std::uint64_t, std::pair<unsigned, unsigned>> lostWrites_;
    std::uint64_t convictedUnits_ = 0;
    std::uint64_t mistrustCandidates_ = 0;
    std::uint64_t accessIndex_ = 0;
    std::uint64_t correlatedGroups_ = 0;
    std::uint64_t correlatedUnits_ = 0;
    std::uint64_t correlatedActivations_ = 0;
    std::uint64_t zeroSurvivorStops_ = 0;
    std::uint64_t retiredUnits_ = 0;
    std::uint64_t retireCandidates_ = 0;
    std::uint64_t watchdogProbes_ = 0;
    std::uint64_t watchdogWait_ = 0;
    std::uint64_t quarantined_ = 0;
    std::uint64_t evacuatedBlocks_ = 0;
    std::uint64_t evacAppends_ = 0;
    std::uint64_t degradedCycles_ = 0;
    std::uint64_t recoveryCycles_ = 0;
    std::array<std::uint64_t, kNumFaultKinds> injected_{};
    std::array<std::uint64_t, kNumFaultKinds> detected_{};
    std::array<std::uint64_t, kNumFaultKinds> recovered_{};
    std::uint64_t unrecoveredTotal_ = 0;
    std::uint64_t degraded_ = 0;
    util::LogHistogram retryCounts_;
    util::LogHistogram recoveryLatency_;
    std::vector<FaultEvent> events_;
};

} // namespace secdimm::fault

#endif // SECUREDIMM_FAULT_FAULT_INJECTOR_HH
