/**
 * @file
 * JSON (de)serialization of FaultPlan, so a chaos campaign is a
 * shippable artifact: tools/sdimm_chaos emits the plan it ran inside
 * its verdict, examples/trace_replay --fault-plan=<file|inline-json>
 * replays any recorded workload under any campaign, and CI attaches
 * failing-seed plans as reproducers.  The schema is the plan's field
 * names verbatim (docs/FAULTS.md "Campaign schema"); unknown keys are
 * rejected, so a typo'd campaign fails loudly instead of silently
 * running the default plan.
 */

#ifndef SECUREDIMM_FAULT_FAULT_PLAN_IO_HH
#define SECUREDIMM_FAULT_FAULT_PLAN_IO_HH

#include <optional>
#include <string>

#include "fault/fault_plan.hh"

namespace secdimm::fault
{

/** Render @p plan as one compact JSON object (defaults included). */
std::string faultPlanToJson(const FaultPlan &plan);

/**
 * Parse a plan from JSON text.  Absent keys keep their FaultPlan
 * defaults; malformed JSON, unknown keys, or wrong-typed values
 * return nullopt with a one-line reason in @p error (when non-null).
 */
std::optional<FaultPlan> faultPlanFromJson(const std::string &text,
                                           std::string *error = nullptr);

} // namespace secdimm::fault

#endif // SECUREDIMM_FAULT_FAULT_PLAN_IO_HH
