#include "fault/fault_plan_io.hh"

#include <cctype>
#include <cmath>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace secdimm::fault
{

namespace
{

/* ------------------------------------------------------------------ */
/* Tiny JSON value + recursive-descent parser.  Self-contained on      */
/* purpose: the repo has no generic JSON dependency, and the metrics   */
/* parser (util/metrics.cc) is specialized to its own schema.  Only    */
/* what a FaultPlan needs: numbers, strings, arrays, objects, bool.    */
/* ------------------------------------------------------------------ */

struct JsonValue {
    enum class Type { Null, Bool, Number, String, Array, Object };
    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string str;
    std::vector<JsonValue> array;
    std::map<std::string, JsonValue> object;
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : s_(text) {}

    std::optional<JsonValue> parse(std::string *error)
    {
        JsonValue v;
        if (!value(v) || (skipWs(), pos_ != s_.size())) {
            if (error) {
                std::ostringstream os;
                os << "JSON parse error near offset " << pos_;
                *error = os.str();
            }
            return std::nullopt;
        }
        return v;
    }

  private:
    void skipWs()
    {
        while (pos_ < s_.size() &&
               std::isspace(static_cast<unsigned char>(s_[pos_])))
            ++pos_;
    }

    bool literal(const char *lit)
    {
        std::size_t n = 0;
        while (lit[n] != '\0')
            ++n;
        if (s_.compare(pos_, n, lit) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool value(JsonValue &out)
    {
        skipWs();
        if (pos_ >= s_.size())
            return false;
        const char c = s_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"')
            return string(out);
        if (c == 't' || c == 'f') {
            out.type = JsonValue::Type::Bool;
            out.boolean = c == 't';
            return literal(c == 't' ? "true" : "false");
        }
        if (c == 'n') {
            out.type = JsonValue::Type::Null;
            return literal("null");
        }
        return number(out);
    }

    bool string(JsonValue &out)
    {
        if (s_[pos_] != '"')
            return false;
        ++pos_;
        out.type = JsonValue::Type::String;
        out.str.clear();
        while (pos_ < s_.size() && s_[pos_] != '"') {
            char c = s_[pos_++];
            if (c == '\\') {
                if (pos_ >= s_.size())
                    return false;
                const char e = s_[pos_++];
                switch (e) {
                case '"': c = '"'; break;
                case '\\': c = '\\'; break;
                case '/': c = '/'; break;
                case 'n': c = '\n'; break;
                case 't': c = '\t'; break;
                case 'r': c = '\r'; break;
                default: return false; // \uXXXX etc. not needed here
                }
            }
            out.str.push_back(c);
        }
        if (pos_ >= s_.size())
            return false;
        ++pos_; // closing quote
        return true;
    }

    bool number(JsonValue &out)
    {
        const std::size_t start = pos_;
        if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
            ++pos_;
        bool any = false;
        auto digits = [&] {
            while (pos_ < s_.size() &&
                   std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
                ++pos_;
                any = true;
            }
        };
        digits();
        if (pos_ < s_.size() && s_[pos_] == '.') {
            ++pos_;
            digits();
        }
        if (pos_ < s_.size() && (s_[pos_] == 'e' || s_[pos_] == 'E')) {
            ++pos_;
            if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+'))
                ++pos_;
            digits();
        }
        if (!any)
            return false;
        out.type = JsonValue::Type::Number;
        out.number = std::stod(s_.substr(start, pos_ - start));
        return true;
    }

    bool array(JsonValue &out)
    {
        ++pos_; // '['
        out.type = JsonValue::Type::Array;
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue elem;
            if (!value(elem))
                return false;
            out.array.push_back(std::move(elem));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    bool object(JsonValue &out)
    {
        ++pos_; // '{'
        out.type = JsonValue::Type::Object;
        skipWs();
        if (pos_ < s_.size() && s_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue key;
            if (pos_ >= s_.size() || s_[pos_] != '"' || !string(key))
                return false;
            skipWs();
            if (pos_ >= s_.size() || s_[pos_] != ':')
                return false;
            ++pos_;
            JsonValue val;
            if (!value(val))
                return false;
            out.object.emplace(std::move(key.str), std::move(val));
            skipWs();
            if (pos_ >= s_.size())
                return false;
            if (s_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (s_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return false;
        }
    }

    const std::string &s_;
    std::size_t pos_ = 0;
};

/* ------------------------------------------------------------------ */
/* Mapping JSON <-> FaultPlan                                          */
/* ------------------------------------------------------------------ */

bool
fail(std::string *error, const std::string &why)
{
    if (error)
        *error = why;
    return false;
}

bool
parsePermanentKind(const std::string &name, PermanentFaultKind &out,
                   std::string *error)
{
    if (name == "stuck_at")
        out = PermanentFaultKind::StuckAt;
    else if (name == "hard_death")
        out = PermanentFaultKind::HardDeath;
    else if (name == "degraded_latency")
        out = PermanentFaultKind::DegradedLatency;
    else
        return fail(error, "unknown permanent fault kind: " + name);
    return true;
}

bool
asU64(const JsonValue &v, std::uint64_t &out)
{
    if (v.type != JsonValue::Type::Number || v.number < 0 ||
        std::floor(v.number) != v.number)
        return false;
    out = static_cast<std::uint64_t>(v.number);
    return true;
}

bool
asDouble(const JsonValue &v, double &out)
{
    if (v.type != JsonValue::Type::Number)
        return false;
    out = v.number;
    return true;
}

bool
parsePermanentFault(const JsonValue &v, PermanentFault &out,
                    std::string *error)
{
    if (v.type != JsonValue::Type::Object)
        return fail(error, "permanent fault entry must be an object");
    for (const auto &[key, val] : v.object) {
        std::uint64_t u = 0;
        if (key == "kind") {
            if (val.type != JsonValue::Type::String ||
                !parsePermanentKind(val.str, out.kind, error))
                return false;
        } else if (key == "unit") {
            if (!asU64(val, u))
                return fail(error, "unit must be a non-negative integer");
            out.unit = static_cast<unsigned>(u);
        } else if (key == "at_access") {
            if (!asU64(val, out.atAccess))
                return fail(error, "at_access must be an integer");
        } else if (key == "latency_cycles") {
            if (!asU64(val, out.latencyCycles))
                return fail(error, "latency_cycles must be an integer");
        } else {
            return fail(error, "unknown permanent fault key: " + key);
        }
    }
    return true;
}

bool
parseCorrelatedFailure(const JsonValue &v, CorrelatedFailure &out,
                       std::string *error)
{
    if (v.type != JsonValue::Type::Object)
        return fail(error, "correlated failure entry must be an object");
    for (const auto &[key, val] : v.object) {
        if (key == "units") {
            if (val.type != JsonValue::Type::Array)
                return fail(error, "units must be an array");
            for (const JsonValue &e : val.array) {
                std::uint64_t u = 0;
                if (!asU64(e, u))
                    return fail(error, "units entries must be integers");
                out.units.push_back(static_cast<unsigned>(u));
            }
        } else if (key == "kind") {
            if (val.type != JsonValue::Type::String ||
                !parsePermanentKind(val.str, out.kind, error))
                return false;
        } else if (key == "at_access") {
            if (!asU64(val, out.atAccess))
                return fail(error, "at_access must be an integer");
        } else if (key == "cascade_gap_accesses") {
            if (!asU64(val, out.cascadeGapAccesses))
                return fail(error,
                            "cascade_gap_accesses must be an integer");
        } else if (key == "latency_cycles") {
            if (!asU64(val, out.latencyCycles))
                return fail(error, "latency_cycles must be an integer");
        } else {
            return fail(error, "unknown correlated failure key: " + key);
        }
    }
    if (out.units.empty())
        return fail(error, "correlated failure needs at least one unit");
    return true;
}

bool
parseByzantineKind(const std::string &name, ByzantineFaultKind &out,
                   std::string *error)
{
    if (name == "persistent_corrupt")
        out = ByzantineFaultKind::PersistentCorrupt;
    else if (name == "duty_cycle_liar")
        out = ByzantineFaultKind::DutyCycleLiar;
    else if (name == "lost_write")
        out = ByzantineFaultKind::LostWrite;
    else if (name == "equivocate")
        out = ByzantineFaultKind::Equivocate;
    else
        return fail(error, "unknown byzantine fault kind: " + name);
    return true;
}

bool
parseByzantineFault(const JsonValue &v, ByzantineFault &out,
                    std::string *error)
{
    if (v.type != JsonValue::Type::Object)
        return fail(error, "byzantine fault entry must be an object");
    for (const auto &[key, val] : v.object) {
        std::uint64_t u = 0;
        if (key == "kind") {
            if (val.type != JsonValue::Type::String ||
                !parseByzantineKind(val.str, out.kind, error))
                return false;
        } else if (key == "unit") {
            if (!asU64(val, u))
                return fail(error, "unit must be a non-negative integer");
            out.unit = static_cast<unsigned>(u);
        } else if (key == "duty_cycle") {
            if (!asDouble(val, out.dutyCycle) || out.dutyCycle < 0.0 ||
                out.dutyCycle > 1.0)
                return fail(error, "duty_cycle must be in [0, 1]");
        } else if (key == "from_access") {
            if (!asU64(val, out.fromAccess))
                return fail(error, "from_access must be an integer");
        } else {
            return fail(error, "unknown byzantine fault key: " + key);
        }
    }
    return true;
}

void
appendJsonString(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        if (c == '"' || c == '\\')
            os << '\\';
        os << c;
    }
    os << '"';
}

std::string
formatDouble(double v)
{
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
}

} // namespace

std::string
faultPlanToJson(const FaultPlan &p)
{
    std::ostringstream os;
    os << "{";
    os << "\"dram_bit_flip_rate\":" << formatDouble(p.dramBitFlipRate);
    os << ",\"link_corrupt_rate\":" << formatDouble(p.linkCorruptRate);
    os << ",\"link_drop_rate\":" << formatDouble(p.linkDropRate);
    os << ",\"link_delay_rate\":" << formatDouble(p.linkDelayRate);
    os << ",\"executor_stall_rate\":"
       << formatDouble(p.executorStallRate);
    os << ",\"queue_perturb_rate\":" << formatDouble(p.queuePerturbRate);
    os << ",\"permanent_faults\":[";
    for (std::size_t i = 0; i < p.permanentFaults.size(); ++i) {
        const PermanentFault &f = p.permanentFaults[i];
        if (i)
            os << ",";
        os << "{\"kind\":";
        appendJsonString(os, permanentKindName(f.kind));
        os << ",\"unit\":" << f.unit
           << ",\"at_access\":" << f.atAccess
           << ",\"latency_cycles\":" << f.latencyCycles << "}";
    }
    os << "],\"correlated_failures\":[";
    for (std::size_t i = 0; i < p.correlatedFailures.size(); ++i) {
        const CorrelatedFailure &g = p.correlatedFailures[i];
        if (i)
            os << ",";
        os << "{\"units\":[";
        for (std::size_t j = 0; j < g.units.size(); ++j) {
            if (j)
                os << ",";
            os << g.units[j];
        }
        os << "],\"kind\":";
        appendJsonString(os, permanentKindName(g.kind));
        os << ",\"at_access\":" << g.atAccess
           << ",\"cascade_gap_accesses\":" << g.cascadeGapAccesses
           << ",\"latency_cycles\":" << g.latencyCycles << "}";
    }
    os << "],\"byzantine_faults\":[";
    for (std::size_t i = 0; i < p.byzantineFaults.size(); ++i) {
        const ByzantineFault &b = p.byzantineFaults[i];
        if (i)
            os << ",";
        os << "{\"kind\":";
        appendJsonString(os, byzantineKindName(b.kind));
        os << ",\"unit\":" << b.unit
           << ",\"duty_cycle\":" << formatDouble(b.dutyCycle)
           << ",\"from_access\":" << b.fromAccess << "}";
    }
    os << "],\"max_retries\":" << p.maxRetries;
    os << ",\"stall_cycles\":" << p.stallCycles;
    os << ",\"seed\":" << p.seed;
    os << ",\"watchdog_deadline_cycles\":" << p.watchdogDeadlineCycles;
    os << ",\"watchdog_backoff_base\":" << p.watchdogBackoffBase;
    os << ",\"watchdog_backoff_cap_cycles\":"
       << p.watchdogBackoffCapCycles;
    os << ",\"watchdog_max_probes\":" << p.watchdogMaxProbes;
    os << ",\"retire_ewma_alpha\":" << formatDouble(p.retireEwmaAlpha);
    os << ",\"retire_tax_threshold_cycles\":"
       << p.retireTaxThresholdCycles;
    os << ",\"retire_hysteresis_accesses\":"
       << p.retireHysteresisAccesses;
    os << ",\"mistrust_ewma_alpha\":"
       << formatDouble(p.mistrustEwmaAlpha);
    os << ",\"mistrust_convict_threshold\":"
       << formatDouble(p.mistrustConvictThreshold);
    os << ",\"mistrust_hysteresis_accesses\":"
       << p.mistrustHysteresisAccesses;
    os << ",\"mistrust_min_evidence\":" << p.mistrustMinEvidence;
    os << "}";
    return os.str();
}

std::optional<FaultPlan>
faultPlanFromJson(const std::string &text, std::string *error)
{
    Parser parser(text);
    std::optional<JsonValue> root = parser.parse(error);
    if (!root)
        return std::nullopt;
    if (root->type != JsonValue::Type::Object) {
        fail(error, "fault plan must be a JSON object");
        return std::nullopt;
    }

    FaultPlan p;
    for (const auto &[key, val] : root->object) {
        std::uint64_t u = 0;
        bool ok = true;
        if (key == "dram_bit_flip_rate")
            ok = asDouble(val, p.dramBitFlipRate);
        else if (key == "link_corrupt_rate")
            ok = asDouble(val, p.linkCorruptRate);
        else if (key == "link_drop_rate")
            ok = asDouble(val, p.linkDropRate);
        else if (key == "link_delay_rate")
            ok = asDouble(val, p.linkDelayRate);
        else if (key == "executor_stall_rate")
            ok = asDouble(val, p.executorStallRate);
        else if (key == "queue_perturb_rate")
            ok = asDouble(val, p.queuePerturbRate);
        else if (key == "retire_ewma_alpha")
            ok = asDouble(val, p.retireEwmaAlpha);
        else if (key == "max_retries") {
            if ((ok = asU64(val, u)))
                p.maxRetries = static_cast<unsigned>(u);
        } else if (key == "stall_cycles")
            ok = asU64(val, p.stallCycles);
        else if (key == "seed")
            ok = asU64(val, p.seed);
        else if (key == "watchdog_deadline_cycles")
            ok = asU64(val, p.watchdogDeadlineCycles);
        else if (key == "watchdog_backoff_base")
            ok = asU64(val, p.watchdogBackoffBase);
        else if (key == "watchdog_backoff_cap_cycles")
            ok = asU64(val, p.watchdogBackoffCapCycles);
        else if (key == "watchdog_max_probes") {
            if ((ok = asU64(val, u)))
                p.watchdogMaxProbes = static_cast<unsigned>(u);
        } else if (key == "retire_tax_threshold_cycles")
            ok = asU64(val, p.retireTaxThresholdCycles);
        else if (key == "retire_hysteresis_accesses") {
            if ((ok = asU64(val, u)))
                p.retireHysteresisAccesses = static_cast<unsigned>(u);
        } else if (key == "mistrust_ewma_alpha")
            ok = asDouble(val, p.mistrustEwmaAlpha);
        else if (key == "mistrust_convict_threshold")
            ok = asDouble(val, p.mistrustConvictThreshold);
        else if (key == "mistrust_hysteresis_accesses") {
            if ((ok = asU64(val, u)))
                p.mistrustHysteresisAccesses = static_cast<unsigned>(u);
        } else if (key == "mistrust_min_evidence") {
            if ((ok = asU64(val, u)))
                p.mistrustMinEvidence = static_cast<unsigned>(u);
        } else if (key == "byzantine_faults") {
            if (val.type != JsonValue::Type::Array) {
                fail(error, "byzantine_faults must be an array");
                return std::nullopt;
            }
            for (const JsonValue &e : val.array) {
                ByzantineFault b;
                if (!parseByzantineFault(e, b, error))
                    return std::nullopt;
                p.byzantineFaults.push_back(b);
            }
        } else if (key == "permanent_faults") {
            if (val.type != JsonValue::Type::Array) {
                fail(error, "permanent_faults must be an array");
                return std::nullopt;
            }
            for (const JsonValue &e : val.array) {
                PermanentFault f;
                if (!parsePermanentFault(e, f, error))
                    return std::nullopt;
                p.permanentFaults.push_back(f);
            }
        } else if (key == "correlated_failures") {
            if (val.type != JsonValue::Type::Array) {
                fail(error, "correlated_failures must be an array");
                return std::nullopt;
            }
            for (const JsonValue &e : val.array) {
                CorrelatedFailure g;
                if (!parseCorrelatedFailure(e, g, error))
                    return std::nullopt;
                p.correlatedFailures.push_back(std::move(g));
            }
        } else {
            fail(error, "unknown fault plan key: " + key);
            return std::nullopt;
        }
        if (!ok) {
            fail(error, "bad value for key: " + key);
            return std::nullopt;
        }
    }
    return p;
}

} // namespace secdimm::fault
