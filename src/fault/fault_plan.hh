/**
 * @file
 * FaultPlan: the seeded, declarative configuration of a fault
 * campaign.  A plan is plain data -- per-site rates plus a retry
 * budget and an RNG seed -- so a campaign is reproducible from the
 * plan alone and can be round-tripped through CLI flags
 * (tools/sdimm_fuzz --faults) and test parameter tables.
 */

#ifndef SECUREDIMM_FAULT_FAULT_PLAN_HH
#define SECUREDIMM_FAULT_FAULT_PLAN_HH

#include <cstdint>

namespace secdimm::fault
{

struct FaultPlan {
    /* --- per-site injection rates (probability per opportunity) --- */
    /** Per bucket/line read from DRAM (dram::Channel, BucketStore). */
    double dramBitFlipRate = 0.0;
    /** Per sealed link message: corrupted body/MAC in flight. */
    double linkCorruptRate = 0.0;
    /** Per sealed link message: silently dropped in flight. */
    double linkDropRate = 0.0;
    /** Per sealed link message: delivered late (after a timeout). */
    double linkDelayRate = 0.0;
    /** Per submitted accessORAM op: PathExecutor start stalled. */
    double executorStallRate = 0.0;
    /** Per TransferQueue pop: entry corrupted at rest. */
    double queuePerturbRate = 0.0;

    /* --- recovery knobs ------------------------------------------ */
    /** Bounded retry budget per detected fault (0 == fail-stop). */
    unsigned maxRetries = 4;
    /** Cycles a stalled PathExecutor op is pushed back. */
    std::uint64_t stallCycles = 1000;
    /** Seed for the injector's dedicated RNG stream. */
    std::uint64_t seed = 0xfa017u;

    /** True if any injection site has a non-zero rate. */
    bool enabled() const
    {
        return dramBitFlipRate > 0.0 || linkCorruptRate > 0.0 ||
               linkDropRate > 0.0 || linkDelayRate > 0.0 ||
               executorStallRate > 0.0 || queuePerturbRate > 0.0;
    }

    /** The empty plan: inject nothing (recovery layer still armed). */
    static FaultPlan none() { return FaultPlan{}; }

    /**
     * Uniform plan: every wire/read site at @p rate, executor stalls
     * and queue perturbations at @p rate too.  The acceptance tests
     * use uniform(0.01, seed) -- >=1% everywhere.
     */
    static FaultPlan uniform(double rate, std::uint64_t seed)
    {
        FaultPlan p;
        p.dramBitFlipRate = rate;
        p.linkCorruptRate = rate;
        p.linkDropRate = rate;
        p.linkDelayRate = rate;
        p.executorStallRate = rate;
        p.queuePerturbRate = rate;
        p.seed = seed;
        return p;
    }
};

} // namespace secdimm::fault

#endif // SECUREDIMM_FAULT_FAULT_PLAN_HH
