/**
 * @file
 * FaultPlan: the seeded, declarative configuration of a fault
 * campaign.  A plan is plain data -- per-site rates plus a retry
 * budget and an RNG seed -- so a campaign is reproducible from the
 * plan alone and can be round-tripped through CLI flags
 * (tools/sdimm_fuzz --faults) and test parameter tables.
 */

#ifndef SECUREDIMM_FAULT_FAULT_PLAN_HH
#define SECUREDIMM_FAULT_FAULT_PLAN_HH

#include <algorithm>
#include <cstdint>
#include <vector>

#include "fault_types.hh"

namespace secdimm::fault
{

struct FaultPlan {
    /* --- per-site injection rates (probability per opportunity) --- */
    /** Per bucket/line read from DRAM (dram::Channel, BucketStore). */
    double dramBitFlipRate = 0.0;
    /** Per sealed link message: corrupted body/MAC in flight. */
    double linkCorruptRate = 0.0;
    /** Per sealed link message: silently dropped in flight. */
    double linkDropRate = 0.0;
    /** Per sealed link message: delivered late (after a timeout). */
    double linkDelayRate = 0.0;
    /** Per submitted accessORAM op: PathExecutor start stalled. */
    double executorStallRate = 0.0;
    /** Per TransferQueue pop: entry corrupted at rest. */
    double queuePerturbRate = 0.0;

    /* --- permanent-fault sites ----------------------------------- */
    /** Stuck-at / hard-death / degraded-latency units (see
     *  PermanentFault).  Unlike the rates above these are not drawn
     *  per opportunity: each entry is one scripted, never-healing
     *  fault at a named unit. */
    std::vector<PermanentFault> permanentFaults;

    /** Correlated failure groups: units sharing a failure domain die
     *  as one burst (cascadeGapAccesses == 0) or as a cascade whose
     *  later members can fire mid-recovery of earlier ones.  Each
     *  group expands into one scripted permanent fault per member. */
    std::vector<CorrelatedFailure> correlatedFailures;

    /* --- byzantine-fault sites ------------------------------------ */
    /** Scripted byzantine units: persistent corruptors, duty-cycle
     *  liars, lost-write units, and INDEP-SPLIT equivocators.  Each
     *  entry is one lying unit (see ByzantineFault); duty-cycle draws
     *  come from a dedicated RNG stream derived from `seed`, so a
     *  byzantine plan never shifts the transient injection stream. */
    std::vector<ByzantineFault> byzantineFaults;

    /* --- mistrust-scoring knobs ----------------------------------- */
    /** EWMA smoothing factor of the per-unit attributed-failure
     *  tracker (mistrust.unitN.score). */
    double mistrustEwmaAlpha = 0.25;
    /** Mistrust score above which a unit becomes a conviction
     *  candidate.  0 disables byzantine conviction entirely. */
    double mistrustConvictThreshold = 0.0;
    /** Consecutive accesses the score must stay above threshold
     *  before the unit is convicted (hysteresis: a burst of honest
     *  transients decays back under the bar before this runs out). */
    unsigned mistrustHysteresisAccesses = 4;
    /** Minimum lifetime attributed failures before a unit can become
     *  a conviction candidate (the evidence floor): the EWMA tracks a
     *  *rate*, so two unluckily adjacent transients can spike it over
     *  the threshold -- but they cannot fake a body of evidence. */
    unsigned mistrustMinEvidence = 6;

    /* --- proactive-retirement knobs ------------------------------- */
    /** EWMA smoothing factor of the per-unit latency-tax tracker. */
    double retireEwmaAlpha = 0.25;
    /** Tax threshold (cycles/op) above which a unit becomes a
     *  retirement candidate.  0 disables proactive retirement. */
    std::uint64_t retireTaxThresholdCycles = 0;
    /** Consecutive accesses the EWMA must stay above threshold before
     *  the unit is actually evacuated (hysteresis against spikes). */
    unsigned retireHysteresisAccesses = 8;

    /* --- recovery knobs ------------------------------------------ */
    /** Bounded retry budget per detected fault (0 == fail-stop). */
    unsigned maxRetries = 4;
    /** Cycles a stalled PathExecutor op is pushed back. */
    std::uint64_t stallCycles = 1000;
    /** Seed for the injector's dedicated RNG stream. */
    std::uint64_t seed = 0xfa017u;

    /* --- watchdog knobs ------------------------------------------ */
    /** Base per-command deadline before the first PROBE re-poll. */
    std::uint64_t watchdogDeadlineCycles = 512;
    /** Exponential backoff multiplier between watchdog PROBEs. */
    std::uint64_t watchdogBackoffBase = 2;
    /** Cap on a single backoff wait (keeps the schedule bounded). */
    std::uint64_t watchdogBackoffCapCycles = 8192;
    /** PROBEs sent before a silent unit is declared permanently dead. */
    unsigned watchdogMaxProbes = 6;

    /**
     * Deterministic capped exponential backoff: the wait after the
     * p-th unanswered PROBE is min(deadline * base^p, cap).  Pure
     * function of the plan, so the watchdog schedule is public.
     */
    std::uint64_t watchdogBackoff(unsigned probe) const
    {
        const std::uint64_t base =
            std::max<std::uint64_t>(watchdogBackoffBase, 1);
        std::uint64_t wait = watchdogDeadlineCycles;
        for (unsigned p = 0; p < probe; ++p) {
            if (wait >= watchdogBackoffCapCycles)
                break;
            // Saturate instead of letting the multiply wrap: with a
            // cap near 2^64 the old `wait *= base` could overflow to
            // a tiny wait and un-order the probe schedule.
            if (base != 1 && wait > watchdogBackoffCapCycles / base) {
                wait = watchdogBackoffCapCycles;
                break;
            }
            wait *= base;
        }
        return std::min(wait, watchdogBackoffCapCycles);
    }

    /** True if any injection site has a non-zero rate. */
    bool enabled() const
    {
        return dramBitFlipRate > 0.0 || linkCorruptRate > 0.0 ||
               linkDropRate > 0.0 || linkDelayRate > 0.0 ||
               executorStallRate > 0.0 || queuePerturbRate > 0.0 ||
               !permanentFaults.empty() || !correlatedFailures.empty() ||
               !byzantineFaults.empty() ||
               mistrustConvictThreshold > 0.0 ||
               retireTaxThresholdCycles > 0;
    }

    /** The empty plan: inject nothing (recovery layer still armed). */
    static FaultPlan none() { return FaultPlan{}; }

    /**
     * Uniform plan: every wire/read site at @p rate, executor stalls
     * and queue perturbations at @p rate too.  The acceptance tests
     * use uniform(0.01, seed) -- >=1% everywhere.
     */
    static FaultPlan uniform(double rate, std::uint64_t seed)
    {
        FaultPlan p;
        p.dramBitFlipRate = rate;
        p.linkCorruptRate = rate;
        p.linkDropRate = rate;
        p.linkDelayRate = rate;
        p.executorStallRate = rate;
        p.queuePerturbRate = rate;
        p.seed = seed;
        return p;
    }

    /** Plan with one SDIMM/group stuck-at dead from boot. */
    static FaultPlan stuckAt(unsigned unit, std::uint64_t seed)
    {
        FaultPlan p;
        PermanentFault f;
        f.kind = PermanentFaultKind::StuckAt;
        f.unit = unit;
        p.permanentFaults.push_back(f);
        p.seed = seed;
        return p;
    }

    /** Plan with one SDIMM/group dying hard at access @p atAccess. */
    static FaultPlan hardDeath(unsigned unit, std::uint64_t atAccess,
                               std::uint64_t seed)
    {
        FaultPlan p;
        PermanentFault f;
        f.kind = PermanentFaultKind::HardDeath;
        f.unit = unit;
        f.atAccess = atAccess;
        p.permanentFaults.push_back(f);
        p.seed = seed;
        return p;
    }

    /** Plan where one unit pays @p cycles extra latency per op. */
    static FaultPlan degradedLatency(unsigned unit, std::uint64_t cycles,
                                     std::uint64_t seed)
    {
        FaultPlan p;
        PermanentFault f;
        f.kind = PermanentFaultKind::DegradedLatency;
        f.unit = unit;
        f.latencyCycles = cycles;
        p.permanentFaults.push_back(f);
        p.seed = seed;
        return p;
    }

    /**
     * Plan where @p units die as one correlated group: member j goes
     * hard-dead at access @p atAccess + j * @p cascadeGapAccesses.  A
     * gap of 0 is a simultaneous burst; a small positive gap lands
     * later deaths inside the evacuation of earlier ones.
     */
    static FaultPlan correlatedDeath(std::vector<unsigned> units,
                                     std::uint64_t atAccess,
                                     std::uint64_t cascadeGapAccesses,
                                     std::uint64_t seed)
    {
        FaultPlan p;
        CorrelatedFailure g;
        g.units = std::move(units);
        g.kind = PermanentFaultKind::HardDeath;
        g.atAccess = atAccess;
        g.cascadeGapAccesses = cascadeGapAccesses;
        p.correlatedFailures.push_back(std::move(g));
        p.seed = seed;
        return p;
    }

    /**
     * Plan that arms proactive retirement: @p unit pays @p cycles of
     * tax per op, and a unit whose tax EWMA stays above @p threshold
     * for retireHysteresisAccesses consecutive accesses is obliviously
     * evacuated before it ever hard-dies.
     */
    static FaultPlan proactiveRetire(unsigned unit, std::uint64_t cycles,
                                     std::uint64_t threshold,
                                     std::uint64_t seed)
    {
        FaultPlan p = degradedLatency(unit, cycles, seed);
        p.retireTaxThresholdCycles = threshold;
        return p;
    }

    /**
     * Plan with one scripted byzantine unit and the mistrust scorer
     * armed at @p threshold (see ByzantineFault for the archetypes).
     * `dutyCycle` is the lying fraction for DutyCycleLiar / LostWrite /
     * Equivocate; PersistentCorrupt lies on every response regardless.
     */
    static FaultPlan byzantine(ByzantineFaultKind kind, unsigned unit,
                               double dutyCycle, std::uint64_t fromAccess,
                               double threshold, std::uint64_t seed)
    {
        FaultPlan p;
        ByzantineFault b;
        b.kind = kind;
        b.unit = unit;
        b.dutyCycle = dutyCycle;
        b.fromAccess = fromAccess;
        p.byzantineFaults.push_back(b);
        p.mistrustConvictThreshold = threshold;
        p.seed = seed;
        return p;
    }

    /** Persistent corruptor at @p unit, default conviction tuning. */
    static FaultPlan byzantineCorruptor(unsigned unit,
                                        std::uint64_t fromAccess,
                                        std::uint64_t seed)
    {
        return byzantine(ByzantineFaultKind::PersistentCorrupt, unit,
                         1.0, fromAccess, 0.12, seed);
    }

    /** Duty-cycle liar at @p unit, default conviction tuning. */
    static FaultPlan byzantineLiar(unsigned unit, double dutyCycle,
                                   std::uint64_t fromAccess,
                                   std::uint64_t seed)
    {
        return byzantine(ByzantineFaultKind::DutyCycleLiar, unit,
                         dutyCycle, fromAccess, 0.12, seed);
    }
};

} // namespace secdimm::fault

#endif // SECUREDIMM_FAULT_FAULT_PLAN_HH
