#include "verify/trace_checker.hh"

#include <algorithm>
#include <array>
#include <sstream>

#include "trace/memory_backend.hh"
#include "util/logging.hh"

namespace secdimm::verify
{

namespace
{

constexpr std::size_t numKinds = 7;

/** Total-variation distance between two empirical distributions. */
double
totalVariation(const std::vector<double> &p, const std::vector<double> &q)
{
    double d = 0.0;
    for (std::size_t i = 0; i < p.size(); ++i)
        d += std::abs(p[i] - q[i]);
    return d / 2.0;
}

std::vector<double>
addressHistogram(const std::vector<TraceEvent> &events,
                 std::uint64_t lo, std::uint64_t hi, std::size_t bins)
{
    std::vector<double> h(bins, 0.0);
    if (events.empty())
        return h;
    const std::uint64_t span = hi - lo + 1;
    for (const TraceEvent &e : events) {
        // Bin index via 128-bit-safe scaling: (addr - lo) * bins / span.
        const std::uint64_t off = e.addr - lo;
        const std::size_t bin = static_cast<std::size_t>(
            static_cast<double>(off) / static_cast<double>(span) *
            static_cast<double>(bins));
        h[std::min(bin, bins - 1)] += 1.0;
    }
    for (double &v : h)
        v /= static_cast<double>(events.size());
    return h;
}

std::vector<double>
kindHistogram(const std::vector<TraceEvent> &events)
{
    std::vector<double> h(numKinds, 0.0);
    if (events.empty())
        return h;
    for (const TraceEvent &e : events)
        h[static_cast<std::size_t>(e.kind)] += 1.0;
    for (double &v : h)
        v /= static_cast<double>(events.size());
    return h;
}

} // namespace

std::string
TraceComparison::summary() const
{
    std::ostringstream os;
    os << (indistinguishable ? "INDISTINGUISHABLE" : "DISTINGUISHABLE")
       << ": addr_tv=" << addressDistance
       << " kind_tv=" << kindDistance
       << " count_delta=" << countRatioDelta << " (" << eventsA << " vs "
       << eventsB << " events)";
    return os.str();
}

TraceComparison
compareTraces(const std::vector<TraceEvent> &a,
              const std::vector<TraceEvent> &b,
              const TraceCheckerOptions &opts)
{
    SD_ASSERT(opts.addressBins >= 2);
    TraceComparison cmp;
    cmp.eventsA = a.size();
    cmp.eventsB = b.size();

    // An empty pair is vacuously alike; one-sided emptiness is the
    // strongest possible difference.
    if (a.empty() || b.empty()) {
        cmp.addressDistance = (a.empty() && b.empty()) ? 0.0 : 1.0;
        cmp.kindDistance = cmp.addressDistance;
        cmp.countRatioDelta = cmp.addressDistance;
        cmp.indistinguishable = a.empty() && b.empty();
        return cmp;
    }

    // Shared binning range so disjoint address regions land in
    // disjoint bins.
    std::uint64_t lo = a[0].addr;
    std::uint64_t hi = a[0].addr;
    for (const TraceEvent &e : a) {
        lo = std::min(lo, e.addr);
        hi = std::max(hi, e.addr);
    }
    for (const TraceEvent &e : b) {
        lo = std::min(lo, e.addr);
        hi = std::max(hi, e.addr);
    }

    cmp.addressDistance =
        totalVariation(addressHistogram(a, lo, hi, opts.addressBins),
                       addressHistogram(b, lo, hi, opts.addressBins));
    cmp.kindDistance = totalVariation(kindHistogram(a), kindHistogram(b));
    const double na = static_cast<double>(a.size());
    const double nb = static_cast<double>(b.size());
    cmp.countRatioDelta = std::abs(na - nb) / std::max(na, nb);

    cmp.indistinguishable =
        cmp.addressDistance <= opts.maxAddressDistance &&
        cmp.kindDistance <= opts.maxKindDistance &&
        cmp.countRatioDelta <= opts.maxCountRatioDelta;
    return cmp;
}

std::string
DeepComparison::summary() const
{
    std::ostringstream os;
    os << (pass ? "DEEP-INDISTINGUISHABLE" : "DEEP-DISTINGUISHABLE")
       << " [" << marginal.summary() << "] [" << ordering.summary()
       << "] [" << gapProfile.summary() << "]";
    return os.str();
}

DeepComparison
deepCompareTraces(const std::vector<TraceEvent> &a,
                  const std::vector<TraceEvent> &b,
                  const DeepCheckOptions &opts)
{
    DeepComparison deep;
    deep.marginal = compareTraces(a, b, opts.marginal);
    deep.ordering = compareAutocorrelation(a, b, opts.timing);
    deep.gapProfile = compareGapProfiles(a, b, opts.timing);
    deep.gapDependenceA = gapPermutationTest(a, opts.timing);
    deep.gapDependenceB = gapPermutationTest(b, opts.timing);
    deep.pass = deep.marginal.indistinguishable && deep.ordering.pass &&
                deep.gapProfile.pass;
    return deep;
}

Tick
driveBackend(MemoryBackend &backend,
             const std::vector<std::pair<Addr, bool>> &accesses)
{
    Tick now = 0;
    std::uint64_t id = 0;
    for (const auto &[addr, write] : accesses) {
        while (!backend.canAccept()) {
            const Tick next = backend.nextEventAt();
            SD_ASSERT(next != tickNever);
            backend.advanceTo(next);
            now = std::max(now, next);
        }
        backend.access(++id, addr, write, now);
    }
    while (!backend.idle()) {
        const Tick next = backend.nextEventAt();
        SD_ASSERT(next != tickNever);
        backend.advanceTo(next);
        now = std::max(now, next);
    }
    return now;
}

} // namespace secdimm::verify
