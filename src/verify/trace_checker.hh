/**
 * @file
 * Trace-indistinguishability checker (the paper's Section III-G
 * privacy argument, made executable): run two workloads that differ
 * only in WHICH addresses and values they touch through a backend and
 * statistically compare the externally visible traces.  A secure
 * design leaves the two traces statistically alike; the non-secure
 * baseline exposes the address stream and fails loudly.
 *
 * Statistical, not exact: ORAM randomness means the two traces are
 * never byte-identical, so the checker compares (1) the distribution
 * of address-like values over bins (total-variation distance), (2)
 * the distribution of event kinds, and (3) the event counts.  See
 * docs/VERIFICATION.md for what a PASS does and does not prove.
 *
 * Those three are MARGINAL statistics: any reordering or re-timing of
 * a trace leaves them untouched.  deepCompareTraces() is the v2
 * entry point that additionally runs the second-order instruments of
 * timing_stats.hh (lag-k autocorrelation of the address and gap
 * series, differential mean-gap profiles), catching schedulers that
 * encode secrets in event ORDER or event RHYTHM.
 */

#ifndef SECUREDIMM_VERIFY_TRACE_CHECKER_HH
#define SECUREDIMM_VERIFY_TRACE_CHECKER_HH

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "util/types.hh"
#include "verify/channel_observer.hh"
#include "verify/timing_stats.hh"

namespace secdimm
{
class MemoryBackend;
}

namespace secdimm::verify
{

/** Thresholds of the indistinguishability decision. */
struct TraceCheckerOptions
{
    /** Histogram bins over the combined address range. */
    std::size_t addressBins = 64;

    /** Max total-variation distance of the binned address histograms. */
    double maxAddressDistance = 0.12;

    /** Max total-variation distance of the event-kind distributions. */
    double maxKindDistance = 0.05;

    /** Max relative difference of the two event counts. */
    double maxCountRatioDelta = 0.10;
};

/** Outcome of one trace pair comparison. */
struct TraceComparison
{
    double addressDistance = 0.0;
    double kindDistance = 0.0;
    double countRatioDelta = 0.0;
    std::size_t eventsA = 0;
    std::size_t eventsB = 0;
    bool indistinguishable = false;

    /** One-line human-readable verdict. */
    std::string summary() const;
};

/** Compare two observed traces under @p opts. */
TraceComparison compareTraces(const std::vector<TraceEvent> &a,
                              const std::vector<TraceEvent> &b,
                              const TraceCheckerOptions &opts = {});

/** Thresholds of the v2 (marginal + second-order) decision. */
struct DeepCheckOptions
{
    TraceCheckerOptions marginal;
    TimingCheckOptions timing;
};

/** Outcome of one v2 trace pair comparison. */
struct DeepComparison
{
    /** The v1 marginal verdict (unchanged semantics). */
    TraceComparison marginal;
    /** Ordering: lag-k autocorrelation profile comparison. */
    AcfComparison ordering;
    /** Rhythm: differential mean-gap-per-address-bin comparison. */
    GapProfileComparison gapProfile;
    /**
     * Within-trace gap/address dependence of each trace -- reported
     * for measurement (it fires on benign DRAM locality structure
     * too), but NOT part of the pass verdict; see timing_stats.hh.
     */
    GapPermutationResult gapDependenceA;
    GapPermutationResult gapDependenceB;
    bool pass = false;

    /** One-line human-readable verdict. */
    std::string summary() const;
};

/**
 * v2 check: the v1 marginal comparison plus the second-order
 * ordering and timing comparisons.  pass iff the marginal verdict is
 * indistinguishable AND the autocorrelation profiles match AND the
 * gap profiles match.
 */
DeepComparison deepCompareTraces(const std::vector<TraceEvent> &a,
                                 const std::vector<TraceEvent> &b,
                                 const DeepCheckOptions &opts = {});

/**
 * Drive @p backend through @p accesses (byte address, is-write) with
 * the canonical event loop: stall until the backend accepts, then
 * drain until idle.  Returns the final tick.
 */
Tick driveBackend(MemoryBackend &backend,
                  const std::vector<std::pair<Addr, bool>> &accesses);

} // namespace secdimm::verify

#endif // SECUREDIMM_VERIFY_TRACE_CHECKER_HH
