#include "verify/fuzz.hh"

#include <algorithm>
#include <cstring>
#include <memory>
#include <sstream>
#include <vector>

#include "fault/fault_injector.hh"
#include "sdimm/indep_split_oram.hh"
#include "sdimm/independent_oram.hh"
#include "sdimm/link_session.hh"
#include "sdimm/sdimm_command.hh"
#include "sdimm/secure_buffer.hh"
#include "sdimm/split_oram.hh"
#include "util/rng.hh"

namespace secdimm::verify
{

namespace
{

/** Record a failure, keeping the first description. */
void
fail(FuzzResult &r, const std::string &what)
{
    ++r.failures;
    if (r.firstFailure.empty())
        r.firstFailure = what;
}

std::vector<std::uint8_t>
randomBytes(Rng &rng, std::size_t len)
{
    std::vector<std::uint8_t> b(len);
    for (auto &v : b)
        v = static_cast<std::uint8_t>(rng.nextBelow(256));
    return b;
}

} // namespace

FuzzResult
fuzzCommandCodec(std::uint64_t seed, std::uint64_t iters)
{
    using namespace sdimm;
    FuzzResult r;
    Rng rng(seed ^ 0xc0dec);

    for (std::uint64_t i = 0; i < iters; ++i) {
        ++r.iterations;

        // Half the time, start from a real command's encoding.
        if (i % 2 == 0) {
            const auto &all = allCommands();
            const SdimmCommandType type =
                all[static_cast<std::size_t>(rng.nextBelow(all.size()))];
            const DdrEncoding enc = encodeCommand(type);
            const BusDecodeResult dec = decodeBusCommand(
                enc.write, enc.rasRow, enc.casCol, enc.opcode);
            if (dec.status != BusDecodeStatus::Command || !dec.command ||
                *dec.command != type) {
                std::ostringstream os;
                os << "codec: " << commandName(type)
                   << " does not round-trip (iter " << i << ")";
                fail(r, os.str());
            }
            continue;
        }

        // Otherwise: random bus activity.  Bias toward the reserved
        // region so the Malformed class is exercised.
        const bool write = rng.nextBelow(2) == 1;
        const std::uint32_t ras = rng.nextBelow(4) == 0
                                      ? static_cast<std::uint32_t>(
                                            rng.nextBelow(1u << 16))
                                      : 0;
        const std::uint32_t cas =
            static_cast<std::uint32_t>(rng.nextBelow(0x40));
        const std::uint8_t opcode =
            static_cast<std::uint8_t>(rng.nextBelow(256));
        const BusDecodeResult dec = decodeBusCommand(write, ras, cas,
                                                     opcode);
        const bool command_set = dec.command.has_value();
        bool bad = false;
        switch (dec.status) {
          case BusDecodeStatus::Command:
            bad = !command_set || ras != 0;
            break;
          case BusDecodeStatus::NormalAccess:
            bad = command_set || ras == 0;
            break;
          case BusDecodeStatus::Malformed:
            bad = command_set || ras != 0;
            break;
        }
        if (bad) {
            std::ostringstream os;
            os << "codec: inconsistent classification for write=" << write
               << " ras=" << ras << " cas=" << cas
               << " opcode=" << static_cast<unsigned>(opcode) << " (iter "
               << i << ")";
            fail(r, os.str());
        }
        if (decodeCommand(write, ras, cas, opcode) != dec.command)
            fail(r, "codec: lenient and strict decode disagree");
    }
    return r;
}

FuzzResult
fuzzCommandFrames(std::uint64_t seed, std::uint64_t iters)
{
    using namespace sdimm;
    FuzzResult r;
    Rng rng(seed ^ 0xf4a3e);

    // Structure-aware helpers: a random valid frame and its wire form.
    const auto validFrame = [&rng]() {
        const auto &all = allCommands();
        CommandFrame f;
        f.type =
            all[static_cast<std::size_t>(rng.nextBelow(all.size()))];
        if (isLongCommand(f.type)) {
            f.payload = randomBytes(
                rng, 1 + static_cast<std::size_t>(rng.nextBelow(64)));
            f.payload[0] = encodeCommand(f.type).opcode;
        }
        return f;
    };

    for (std::uint64_t i = 0; i < iters; ++i) {
        ++r.iterations;
        const std::uint64_t mode = rng.nextBelow(7);

        if (mode == 0) {
            // Valid frame round-trip.
            const auto &all = allCommands();
            CommandFrame f;
            f.type =
                all[static_cast<std::size_t>(rng.nextBelow(all.size()))];
            if (isLongCommand(f.type)) {
                f.payload = randomBytes(
                    rng, 1 + static_cast<std::size_t>(rng.nextBelow(128)));
                f.payload[0] = encodeCommand(f.type).opcode;
            }
            const std::vector<std::uint8_t> wire = serializeFrame(f);
            const FrameParseResult parsed =
                parseFrame(wire.data(), wire.size());
            if (!parsed.frame || parsed.error != FrameError::None ||
                parsed.frame->type != f.type ||
                parsed.frame->payload != f.payload) {
                std::ostringstream os;
                os << "frames: valid " << commandName(f.type)
                   << " frame rejected with "
                   << frameErrorName(parsed.error) << " (iter " << i
                   << ")";
                fail(r, os.str());
            }
            continue;
        }

        std::vector<std::uint8_t> wire;
        if (mode == 1) {
            // Pure random garbage.
            wire = randomBytes(
                rng, static_cast<std::size_t>(rng.nextBelow(64)));
        } else if (mode == 4) {
            // Splice: prefix of one valid frame + suffix of another.
            // Exercises the header/payload boundary logic with bytes
            // that are individually plausible.
            const std::vector<std::uint8_t> a =
                serializeFrame(validFrame());
            const std::vector<std::uint8_t> b =
                serializeFrame(validFrame());
            const std::size_t cut_a = static_cast<std::size_t>(
                rng.nextBelow(a.size() + 1));
            const std::size_t cut_b = static_cast<std::size_t>(
                rng.nextBelow(b.size() + 1));
            wire.assign(a.begin(),
                        a.begin() + static_cast<std::ptrdiff_t>(cut_a));
            wire.insert(wire.end(),
                        b.begin() + static_cast<std::ptrdiff_t>(cut_b),
                        b.end());
        } else if (mode == 5) {
            // Length-field skew: +/-1 and +/-8 on the 16-bit LE length
            // at wire bytes 2-3, body untouched.  Must map to
            // Truncated / LengthMismatch / Oversize, never misparse.
            wire = serializeFrame(validFrame());
            static const int deltas[4] = {1, -1, 8, -8};
            const int delta =
                deltas[static_cast<std::size_t>(rng.nextBelow(4))];
            const std::uint16_t declared = static_cast<std::uint16_t>(
                wire[2] | (static_cast<unsigned>(wire[3]) << 8));
            const std::uint16_t skewed =
                static_cast<std::uint16_t>(declared + delta);
            wire[2] = static_cast<std::uint8_t>(skewed & 0xff);
            wire[3] = static_cast<std::uint8_t>(skewed >> 8);
        } else if (mode == 6) {
            // Truncate exactly at a field boundary (after the magic,
            // the type, each length byte, the header, the opcode) --
            // the off-by-one-prone cuts a uniform prefix rarely hits.
            wire = serializeFrame(validFrame());
            static const std::size_t cuts[5] = {1, 2, 3, 4, 5};
            const std::size_t cut = std::min(
                cuts[static_cast<std::size_t>(rng.nextBelow(5))],
                wire.size() - 1);
            wire.resize(cut);
        } else {
            // Start from a valid frame and damage it.
            wire = serializeFrame(validFrame());
            if (mode == 2 && !wire.empty()) {
                // Truncate to a strict prefix.
                wire.resize(static_cast<std::size_t>(
                    rng.nextBelow(wire.size())));
            } else if (!wire.empty()) {
                // Flip one bit.
                const std::size_t at = static_cast<std::size_t>(
                    rng.nextBelow(wire.size()));
                wire[at] ^= static_cast<std::uint8_t>(
                    1u << rng.nextBelow(8));
            }
        }

        // The only requirement on hostile input: a definite verdict,
        // and frame XOR error (parse never crashes; the harness runs
        // under ASan/UBSan in CI to back that up).
        const FrameParseResult parsed =
            parseFrame(wire.data(), wire.size());
        if (parsed.frame.has_value() !=
            (parsed.error == FrameError::None)) {
            std::ostringstream os;
            os << "frames: frame/error disagreement on a " << wire.size()
               << "-byte input (iter " << i << ")";
            fail(r, os.str());
        }
        if (parsed.frame) {
            // Whatever parsed must re-serialize to the exact input.
            if (serializeFrame(*parsed.frame) != wire)
                fail(r, "frames: accepted input does not re-serialize");
        }
    }
    return r;
}

FuzzResult
fuzzLinkSession(std::uint64_t seed, std::uint64_t iters)
{
    using namespace sdimm;
    FuzzResult r;
    Rng rng(seed ^ 0x115e55);
    auto link = establishLink(rng);
    LinkEndpoint &cpu = link.first;
    LinkEndpoint &dimm = link.second;

    for (std::uint64_t i = 0; i < iters; ++i) {
        ++r.iterations;
        const std::vector<std::uint8_t> plain = randomBytes(
            rng, 1 + static_cast<std::size_t>(rng.nextBelow(200)));
        const std::uint8_t opcode =
            static_cast<std::uint8_t>(rng.nextBelow(256));
        const SealedMessage msg = cpu.seal(opcode, plain);

        const std::uint64_t mode = rng.nextBelow(4);
        if (mode == 0) {
            // Honest delivery.
            const auto out = dimm.unseal(msg);
            if (!out || *out != plain) {
                std::ostringstream os;
                os << "link: honest message rejected (iter " << i << ")";
                fail(r, os.str());
            }
            continue;
        }

        SealedMessage evil = msg;
        if (mode == 1) {
            // Flip one bit somewhere in (opcode, seq, body, mac).
            const std::uint64_t field = rng.nextBelow(
                3 + (evil.body.empty() ? 0 : 1));
            switch (field) {
              case 0:
                evil.opcode ^= static_cast<std::uint8_t>(
                    1u << rng.nextBelow(8));
                break;
              case 1:
                evil.seq ^= std::uint64_t{1} << rng.nextBelow(64);
                break;
              case 2:
                evil.mac ^= std::uint64_t{1} << rng.nextBelow(64);
                break;
              default:
                evil.body[static_cast<std::size_t>(
                    rng.nextBelow(evil.body.size()))] ^=
                    static_cast<std::uint8_t>(1u << rng.nextBelow(8));
                break;
            }
        } else if (mode == 2 && !evil.body.empty()) {
            // Truncate the body.
            evil.body.resize(static_cast<std::size_t>(
                rng.nextBelow(evil.body.size())));
        } else {
            // Replay: deliver honestly, then deliver again.
            if (!dimm.unseal(evil).has_value()) {
                std::ostringstream os;
                os << "link: honest message rejected pre-replay (iter "
                   << i << ")";
                fail(r, os.str());
                continue;
            }
        }

        if (dimm.unseal(evil).has_value()) {
            std::ostringstream os;
            os << "link: tampered/replayed message accepted (mode "
               << mode << ", iter " << i << ")";
            fail(r, os.str());
        }

        // Resynchronize: deliver one honest message so later honest
        // iterations are not mistaken for replays.
        if (mode != 3) {
            const SealedMessage sync = cpu.seal(0, {0x00});
            if (!dimm.unseal(sync).has_value())
                fail(r, "link: endpoint wedged after rejecting forgery");
        }
    }
    return r;
}

FuzzResult
fuzzMessageCodecs(std::uint64_t seed, std::uint64_t iters)
{
    using namespace sdimm;
    FuzzResult r;
    Rng rng(seed ^ 0x6e55a6e);

    for (std::uint64_t i = 0; i < iters; ++i) {
        ++r.iterations;
        const std::uint64_t mode = rng.nextBelow(2);

        if (mode == 0) {
            // Round-trips of random well-formed requests.
            AccessRequest a;
            a.addr = rng.next();
            a.localLeaf = rng.next();
            a.newLocalLeaf = rng.next();
            a.write = rng.nextBelow(2) == 1;
            for (auto &v : a.data)
                v = static_cast<std::uint8_t>(rng.nextBelow(256));
            const auto a2 = unpackAccess(packAccess(a));
            if (!a2 || a2->addr != a.addr ||
                a2->localLeaf != a.localLeaf ||
                a2->newLocalLeaf != a.newLocalLeaf ||
                a2->write != a.write || a2->data != a.data) {
                fail(r, "messages: ACCESS round-trip broken");
            }

            AppendRequest p;
            p.real = rng.nextBelow(2) == 1;
            p.addr = rng.next();
            p.localLeaf = rng.next();
            for (auto &v : p.data)
                v = static_cast<std::uint8_t>(rng.nextBelow(256));
            const auto p2 = unpackAppend(packAppend(p));
            if (!p2 || p2->real != p.real || p2->addr != p.addr ||
                p2->localLeaf != p.localLeaf || p2->data != p.data) {
                fail(r, "messages: APPEND round-trip broken");
            }

            AccessResponse q;
            q.dummy = rng.nextBelow(2) == 1;
            for (auto &v : q.data)
                v = static_cast<std::uint8_t>(rng.nextBelow(256));
            const auto q2 = unpackResponse(packResponse(q));
            if (!q2 || q2->dummy != q.dummy || q2->data != q.data)
                fail(r, "messages: response round-trip broken");
            continue;
        }

        // Arbitrary-size random bodies: only the exact wire size may
        // parse; anything else must yield nullopt, not a crash or a
        // misparse.
        const std::size_t len =
            static_cast<std::size_t>(rng.nextBelow(160));
        const std::vector<std::uint8_t> body = randomBytes(rng, len);
        if (unpackAccess(body).has_value() != (len == accessBodyBytes))
            fail(r, "messages: ACCESS size check broken");
        if (unpackResponse(body).has_value() !=
            (len == responseBodyBytes)) {
            fail(r, "messages: response size check broken");
        }
        if (unpackAppend(body).has_value() != (len == appendBodyBytes))
            fail(r, "messages: APPEND size check broken");
    }
    return r;
}

FuzzResult
fuzzFaultRecovery(std::uint64_t seed, std::uint64_t iters)
{
    FuzzResult r;
    Rng rng(seed ^ 0xfa0175);

    for (std::uint64_t i = 0; i < iters; ++i) {
        ++r.iterations;

        fault::FaultPlan plan;
        plan.seed = rng.next();
        plan.maxRetries = 1 + static_cast<unsigned>(rng.nextBelow(5));
        const auto rate = [&] { return rng.nextBelow(50) / 1000.0; };
        plan.dramBitFlipRate = rate();
        plan.linkCorruptRate = rate();
        plan.linkDropRate = rate();
        plan.linkDelayRate = rate();
        plan.queuePerturbRate = rate();
        fault::FaultInjector inj(plan);

        oram::OramParams tree;
        tree.levels = 3 + static_cast<unsigned>(rng.nextBelow(2));
        tree.stashCapacity = 150;
        const std::uint64_t proto_seed = rng.next();

        // One protocol instance per iteration, in rotation.
        std::unique_ptr<sdimm::IndependentOram> indep;
        std::unique_ptr<sdimm::SplitOram> split;
        std::unique_ptr<sdimm::IndepSplitOram> combo;
        std::uint64_t capacity = 0;
        const unsigned which = i % 3;
        if (which == 0) {
            sdimm::IndependentOram::Params p;
            p.perSdimm = tree;
            p.numSdimms = 2;
            p.transferCapacity = 8;
            indep = std::make_unique<sdimm::IndependentOram>(
                p, proto_seed);
            indep->setFaultInjector(
                &inj, fault::DegradationPolicy::RetryThenStop);
            capacity = indep->capacityBlocks();
        } else if (which == 1) {
            sdimm::SplitOram::Params p;
            p.tree = tree;
            p.slices = 2;
            split = std::make_unique<sdimm::SplitOram>(p, proto_seed);
            split->setFaultInjector(&inj);
            capacity = split->capacityBlocks();
        } else {
            sdimm::IndepSplitOram::Params p;
            p.perGroupTree = tree;
            p.groups = 2;
            p.slicesPerGroup = 2;
            combo =
                std::make_unique<sdimm::IndepSplitOram>(p, proto_seed);
            combo->setFaultInjector(
                &inj, fault::DegradationPolicy::RetryThenStop);
            capacity = combo->capacityBlocks();
        }
        const auto access = [&](Addr a, oram::OramOp op,
                                const BlockData *d) {
            if (indep)
                return indep->access(a, op, d);
            if (split)
                return split->access(a, op, d);
            return combo->access(a, op, d);
        };
        const auto integrity_ok = [&] {
            if (indep)
                return indep->integrityOk();
            if (split)
                return split->integrityOk();
            return combo->integrityOk();
        };

        // Write/read-back workload over a handful of blocks.
        const unsigned blocks = static_cast<unsigned>(
            std::min<std::uint64_t>(capacity, 12));
        std::vector<BlockData> mirror(blocks);
        for (unsigned b = 0; b < blocks; ++b) {
            for (auto &v : mirror[b])
                v = static_cast<std::uint8_t>(rng.nextBelow(256));
            access(b, oram::OramOp::Write, &mirror[b]);
        }
        bool data_ok = true;
        for (unsigned b = 0; b < blocks; ++b) {
            const BlockData got =
                access(b, oram::OramOp::Read, nullptr);
            if (got != mirror[b])
                data_ok = false;
        }

        if (inj.detectedTotal() != inj.injectedTotal()) {
            std::ostringstream os;
            os << "fault: detected " << inj.detectedTotal()
               << " != injected " << inj.injectedTotal() << " (proto "
               << which << ", iter " << i << ")";
            fail(r, os.str());
        }
        if (inj.unrecoveredTotal() == 0) {
            if (inj.recoveredTotal() != inj.detectedTotal()) {
                std::ostringstream os;
                os << "fault: recovered " << inj.recoveredTotal()
                   << " != detected " << inj.detectedTotal()
                   << " with no exhausted budget (iter " << i << ")";
                fail(r, os.str());
            }
            if (!integrity_ok()) {
                std::ostringstream os;
                os << "fault: clean recovery but integrityOk() false "
                      "(proto "
                   << which << ", iter " << i << ")";
                fail(r, os.str());
            }
            if (!data_ok) {
                std::ostringstream os;
                os << "fault: recovered campaign returned wrong data "
                      "(proto "
                   << which << ", iter " << i << ")";
                fail(r, os.str());
            }
        } else if (integrity_ok()) {
            std::ostringstream os;
            os << "fault: exhausted retry budget but integrityOk() "
                  "still true (proto "
               << which << ", iter " << i << ")";
            fail(r, os.str());
        }
    }
    return r;
}

FuzzResult
fuzzPermanentFaults(std::uint64_t seed, std::uint64_t iters)
{
    FuzzResult r;
    Rng rng(seed ^ 0xdeadd1);

    for (std::uint64_t i = 0; i < iters; ++i) {
        ++r.iterations;

        oram::OramParams tree;
        tree.levels = 3 + static_cast<unsigned>(rng.nextBelow(2));
        tree.stashCapacity = 150;
        const std::uint64_t proto_seed = rng.next();

        std::unique_ptr<sdimm::IndependentOram> indep;
        std::unique_ptr<sdimm::IndepSplitOram> combo;
        std::uint64_t capacity = 0;
        unsigned units = 0;
        const unsigned which = i % 3;
        if (which == 2) {
            sdimm::IndepSplitOram::Params p;
            p.perGroupTree = tree;
            p.groups = 2;
            p.slicesPerGroup = 2;
            units = p.groups;
            combo =
                std::make_unique<sdimm::IndepSplitOram>(p, proto_seed);
            capacity = combo->capacityBlocks();
        } else {
            sdimm::IndependentOram::Params p;
            p.perSdimm = tree;
            p.numSdimms = which == 0 ? 2 : 4;
            p.transferCapacity = 16;
            units = p.numSdimms;
            indep = std::make_unique<sdimm::IndependentOram>(
                p, proto_seed);
            capacity = indep->capacityBlocks();
        }
        const unsigned blocks = static_cast<unsigned>(
            std::min<std::uint64_t>(capacity, 12));

        // One permanent fault at a seeded unit: stuck-at from boot or
        // a hard death at a seeded index inside the workload (the
        // workload runs 2*blocks accesses, so atAccess < blocks always
        // activates).  Optionally, light transient noise on top, with
        // a retry budget deep enough that exhaustion stays rare.
        fault::FaultPlan plan;
        plan.seed = rng.next();
        plan.maxRetries = 6;
        fault::PermanentFault pf;
        pf.kind = rng.nextBelow(2) == 0
                      ? fault::PermanentFaultKind::StuckAt
                      : fault::PermanentFaultKind::HardDeath;
        pf.unit = static_cast<unsigned>(rng.nextBelow(units));
        pf.atAccess = rng.nextBelow(blocks);
        plan.permanentFaults.push_back(pf);
        if (rng.nextBelow(2) == 0) {
            plan.dramBitFlipRate = rng.nextBelow(10) / 1000.0;
            plan.linkCorruptRate = rng.nextBelow(10) / 1000.0;
        }
        fault::FaultInjector inj(plan);
        if (indep) {
            indep->setFaultInjector(&inj,
                                    fault::DegradationPolicy::Degraded);
        } else {
            combo->setFaultInjector(&inj,
                                    fault::DegradationPolicy::Degraded);
        }

        const auto access = [&](Addr a, oram::OramOp op,
                                const BlockData *d) {
            return indep ? indep->access(a, op, d)
                         : combo->access(a, op, d);
        };
        std::vector<BlockData> mirror(blocks);
        for (unsigned b = 0; b < blocks; ++b) {
            for (auto &v : mirror[b])
                v = static_cast<std::uint8_t>(rng.nextBelow(256));
            access(b, oram::OramOp::Write, &mirror[b]);
        }
        bool data_ok = true;
        for (unsigned b = 0; b < blocks; ++b) {
            const BlockData got =
                access(b, oram::OramOp::Read, nullptr);
            if (got != mirror[b])
                data_ok = false;
        }

        const auto oops = [&](const std::string &what) {
            std::ostringstream os;
            os << "permanent: " << what << " (proto " << which
               << ", kind " << fault::permanentKindName(pf.kind)
               << ", unit " << pf.unit << ", iter " << i << ")";
            fail(r, os.str());
        };
        if (inj.detectedTotal() != inj.injectedTotal())
            oops("detected != injected");
        if (inj.recoveredTotal() + inj.unrecoveredTotal() !=
            inj.detectedTotal()) {
            oops("recovered + unrecovered != detected");
        }
        if (inj.unrecoveredTotal() == 0) {
            // Nothing exhausted: the death must have been absorbed.
            if (inj.quarantinedUnits() < 1)
                oops("dead unit never quarantined");
            const bool ok =
                indep ? indep->integrityOk() : combo->integrityOk();
            if (!ok)
                oops("clean campaign but integrityOk() false");
            if (!data_ok)
                oops("clean campaign returned wrong data");
        }
    }
    return r;
}

} // namespace secdimm::verify
