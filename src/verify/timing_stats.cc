#include "verify/timing_stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"
#include "util/rng.hh"

namespace secdimm::verify
{

namespace
{

double
mean(const std::vector<double> &v)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += x;
    return s / static_cast<double>(v.size());
}

double
variance(const std::vector<double> &v, double m)
{
    if (v.empty())
        return 0.0;
    double s = 0.0;
    for (double x : v)
        s += (x - m) * (x - m);
    return s / static_cast<double>(v.size());
}

/** Bin an address into [0, bins) over the series' own range. */
std::vector<std::size_t>
binLabels(const std::vector<double> &addrs, std::size_t bins)
{
    std::vector<std::size_t> labels(addrs.size(), 0);
    if (addrs.empty())
        return labels;
    double lo = addrs[0];
    double hi = addrs[0];
    for (double a : addrs) {
        lo = std::min(lo, a);
        hi = std::max(hi, a);
    }
    const double span = hi - lo;
    if (span <= 0.0)
        return labels; // Single bin: statistic will be 0.
    for (std::size_t i = 0; i < addrs.size(); ++i) {
        const auto b = static_cast<std::size_t>((addrs[i] - lo) / span *
                                                static_cast<double>(bins));
        labels[i] = std::min(b, bins - 1);
    }
    return labels;
}

/** Between-bin weighted variance of the mean gap (ANOVA numerator). */
double
betweenBinStat(const std::vector<double> &gaps,
               const std::vector<std::size_t> &labels, std::size_t bins)
{
    std::vector<double> sum(bins, 0.0);
    std::vector<double> cnt(bins, 0.0);
    for (std::size_t i = 0; i < gaps.size(); ++i) {
        sum[labels[i]] += gaps[i];
        cnt[labels[i]] += 1.0;
    }
    const double grand = mean(gaps);
    double stat = 0.0;
    for (std::size_t b = 0; b < bins; ++b) {
        if (cnt[b] == 0.0)
            continue;
        const double d = sum[b] / cnt[b] - grand;
        stat += cnt[b] * d * d;
    }
    return stat / static_cast<double>(gaps.size());
}

} // namespace

std::vector<double>
addressSeries(const std::vector<TraceEvent> &events)
{
    std::vector<double> s;
    s.reserve(events.size());
    for (const TraceEvent &e : events)
        s.push_back(static_cast<double>(e.addr));
    return s;
}

std::vector<double>
gapSeries(const std::vector<TraceEvent> &events)
{
    std::vector<double> g;
    if (events.size() < 2)
        return g;
    g.reserve(events.size() - 1);
    for (std::size_t i = 0; i + 1 < events.size(); ++i) {
        // Ticks are monotone per channel but merged multi-channel
        // traces may interleave; clamp at 0 so a reordering cannot
        // masquerade as a negative gap.
        const double d = events[i + 1].at >= events[i].at
                             ? static_cast<double>(events[i + 1].at -
                                                   events[i].at)
                             : 0.0;
        g.push_back(d);
    }
    return g;
}

double
lagAutocorrelation(const std::vector<double> &series, unsigned lag)
{
    if (lag == 0 || series.size() < lag + 2)
        return 0.0;
    const double m = mean(series);
    const double var = variance(series, m);
    if (var <= 1e-12)
        return 0.0; // Constant series: no ordering information.
    double s = 0.0;
    for (std::size_t i = 0; i + lag < series.size(); ++i)
        s += (series[i] - m) * (series[i + lag] - m);
    return s / (static_cast<double>(series.size()) * var);
}

std::string
AcfComparison::summary() const
{
    std::ostringstream os;
    os << (pass ? "ACF-PASS" : "ACF-FAIL")
       << ": addr_delta=" << maxAddressDelta << "@lag" << worstAddressLag
       << " gap_delta=" << maxGapDelta << "@lag" << worstGapLag
       << " band=" << band;
    return os.str();
}

AcfComparison
compareAutocorrelation(const std::vector<TraceEvent> &a,
                       const std::vector<TraceEvent> &b,
                       const TimingCheckOptions &opts)
{
    SD_ASSERT(opts.maxLag >= 1);
    AcfComparison cmp;
    const double na = static_cast<double>(std::max<std::size_t>(
        a.size(), 2));
    const double nb = static_cast<double>(std::max<std::size_t>(
        b.size(), 2));
    cmp.band = std::max(opts.acfBandFloor,
                        opts.acfBandScale *
                            std::sqrt(1.0 / na + 1.0 / nb));

    const std::vector<double> addr_a = addressSeries(a);
    const std::vector<double> addr_b = addressSeries(b);
    const std::vector<double> gap_a = gapSeries(a);
    const std::vector<double> gap_b = gapSeries(b);

    for (unsigned k = 1; k <= opts.maxLag; ++k) {
        const double da = std::abs(lagAutocorrelation(addr_a, k) -
                                   lagAutocorrelation(addr_b, k));
        if (da > cmp.maxAddressDelta) {
            cmp.maxAddressDelta = da;
            cmp.worstAddressLag = k;
        }
        const double dg = std::abs(lagAutocorrelation(gap_a, k) -
                                   lagAutocorrelation(gap_b, k));
        if (dg > cmp.maxGapDelta) {
            cmp.maxGapDelta = dg;
            cmp.worstGapLag = k;
        }
    }
    cmp.pass = cmp.maxAddressDelta <= cmp.band &&
               cmp.maxGapDelta <= cmp.band;
    return cmp;
}

std::string
GapPermutationResult::summary() const
{
    std::ostringstream os;
    os << (pass ? "GAP-PASS" : "GAP-FAIL");
    if (degenerate) {
        os << " (degenerate: no timestamps)";
        return os.str();
    }
    os << ": stat=" << observedStat << " p=" << pValue << " ("
       << permutations << " permutations)";
    return os.str();
}

GapPermutationResult
gapPermutationTest(const std::vector<TraceEvent> &events,
                   const TimingCheckOptions &opts)
{
    SD_ASSERT(opts.permAddressBins >= 2);
    GapPermutationResult res;
    res.permutations = opts.permutations;

    std::vector<double> gaps = gapSeries(events);
    if (gaps.size() < 8) {
        res.degenerate = true;
        res.pass = true;
        return res;
    }
    const double gvar = variance(gaps, mean(gaps));
    if (gvar <= 1e-12) {
        // Constant (typically all-zero) gaps: nothing to leak through.
        res.degenerate = true;
        res.pass = true;
        return res;
    }

    // gaps[i] is the gap AFTER event i; label it with event i's bin.
    std::vector<double> addrs = addressSeries(events);
    addrs.pop_back();
    const std::vector<std::size_t> labels =
        binLabels(addrs, opts.permAddressBins);

    res.observedStat =
        betweenBinStat(gaps, labels, opts.permAddressBins);

    // Null distribution: shuffle the gap series against the labels.
    Rng rng(opts.seed);
    unsigned ge = 0;
    std::vector<double> perm = gaps;
    for (unsigned p = 0; p < opts.permutations; ++p) {
        for (std::size_t i = perm.size() - 1; i > 0; --i) {
            const std::size_t j =
                static_cast<std::size_t>(rng.nextBelow(i + 1));
            std::swap(perm[i], perm[j]);
        }
        if (betweenBinStat(perm, labels, opts.permAddressBins) >=
            res.observedStat)
            ++ge;
    }
    res.pValue = (1.0 + ge) / (1.0 + opts.permutations);
    res.pass = res.pValue > opts.permAlpha;
    return res;
}

namespace
{

/** Per-bin gap sums/counts of one trace over a shared address range. */
struct BinnedGaps
{
    std::vector<double> sum;
    std::vector<double> cnt;
    double grandMean = 0.0;
};

BinnedGaps
binGaps(const std::vector<TraceEvent> &events, double lo, double span,
        std::size_t bins)
{
    BinnedGaps bg;
    bg.sum.assign(bins, 0.0);
    bg.cnt.assign(bins, 0.0);
    const std::vector<double> gaps = gapSeries(events);
    double total = 0.0;
    for (std::size_t i = 0; i < gaps.size(); ++i) {
        const double a = static_cast<double>(events[i].addr);
        std::size_t b = 0;
        if (span > 0.0) {
            b = std::min(static_cast<std::size_t>(
                             (a - lo) / span * static_cast<double>(bins)),
                         bins - 1);
        }
        bg.sum[b] += gaps[i];
        bg.cnt[b] += 1.0;
        total += gaps[i];
    }
    bg.grandMean =
        gaps.empty() ? 0.0 : total / static_cast<double>(gaps.size());
    return bg;
}

} // namespace

std::string
GapProfileComparison::summary() const
{
    std::ostringstream os;
    os << (pass ? "GAPPROFILE-PASS" : "GAPPROFILE-FAIL");
    if (degenerate) {
        os << " (degenerate: no timestamps)";
        return os.str();
    }
    os << ": max_delta=" << maxDelta << "@bin" << worstBin
       << " threshold=" << threshold << " bins=" << binsCompared;
    return os.str();
}

GapProfileComparison
compareGapProfiles(const std::vector<TraceEvent> &a,
                   const std::vector<TraceEvent> &b,
                   const TimingCheckOptions &opts)
{
    SD_ASSERT(opts.permAddressBins >= 2);
    GapProfileComparison cmp;
    cmp.threshold = opts.maxGapProfileDelta;

    if (a.size() < 2 || b.size() < 2) {
        cmp.degenerate = true;
        cmp.pass = a.size() == b.size();
        return cmp;
    }

    // Shared binning range (same convention as compareTraces).
    double lo = static_cast<double>(a[0].addr);
    double hi = lo;
    for (const TraceEvent &e : a) {
        lo = std::min(lo, static_cast<double>(e.addr));
        hi = std::max(hi, static_cast<double>(e.addr));
    }
    for (const TraceEvent &e : b) {
        lo = std::min(lo, static_cast<double>(e.addr));
        hi = std::max(hi, static_cast<double>(e.addr));
    }

    const std::size_t bins = opts.permAddressBins;
    const BinnedGaps ga = binGaps(a, lo, hi - lo, bins);
    const BinnedGaps gb = binGaps(b, lo, hi - lo, bins);
    if (ga.grandMean <= 1e-12 && gb.grandMean <= 1e-12) {
        cmp.degenerate = true;
        cmp.pass = true;
        return cmp;
    }
    // One trace ticking while the other does not is itself a leak.
    if (ga.grandMean <= 1e-12 || gb.grandMean <= 1e-12) {
        cmp.maxDelta = 1.0;
        cmp.pass = false;
        return cmp;
    }

    const double min_n = static_cast<double>(opts.minBinSamples);
    for (std::size_t i = 0; i < bins; ++i) {
        if (ga.cnt[i] < min_n || gb.cnt[i] < min_n)
            continue;
        ++cmp.binsCompared;
        const double pa = ga.sum[i] / ga.cnt[i] / ga.grandMean;
        const double pb = gb.sum[i] / gb.cnt[i] / gb.grandMean;
        const double d = std::abs(pa - pb);
        if (d > cmp.maxDelta) {
            cmp.maxDelta = d;
            cmp.worstBin = i;
        }
    }
    cmp.pass = cmp.maxDelta <= cmp.threshold;
    return cmp;
}

} // namespace secdimm::verify
