/**
 * @file
 * The adversary's viewpoint: a passive observer of everything that is
 * externally visible on a memory channel -- DRAM command/address
 * activity (NonSecure / Freecursive backends), SDIMM link-bus
 * transactions (Independent / Split backends), and, for the
 * functional layer, BucketStore read/write sequences.  The
 * trace-indistinguishability checker (trace_checker.hh) compares two
 * such traces; nothing here may peek at plaintext, stash contents, or
 * any other secret state.
 */

#ifndef SECUREDIMM_VERIFY_CHANNEL_OBSERVER_HH
#define SECUREDIMM_VERIFY_CHANNEL_OBSERVER_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace secdimm
{
class MemoryBackend;
namespace dram
{
class DramChannel;
}
namespace sdimm
{
class LinkBus;
}
namespace oram
{
class BucketStore;
}
} // namespace secdimm

namespace secdimm::verify
{

/** What an event on the observed channel was. */
enum class TraceEventKind : std::uint8_t
{
    Read,       ///< DRAM read burst (CAS address visible).
    Write,      ///< DRAM write burst.
    ShortCmd,   ///< Link-bus short command (non-probe).
    Probe,      ///< Link-bus PROBE poll.
    Transfer,   ///< Link-bus data transfer (payload size visible).
    StoreRead,  ///< BucketStore bucket read (bucket seq visible).
    StoreWrite, ///< BucketStore bucket write.
};

/** Human-readable kind name. */
const char *traceEventKindName(TraceEventKind kind);

/**
 * One externally visible event.  @p addr carries whatever address-like
 * quantity the channel exposes: the DRAM block address, the transfer
 * byte count, or the bucket sequence number.
 */
struct TraceEvent
{
    TraceEventKind kind = TraceEventKind::Read;
    std::uint64_t addr = 0;
    Tick at = 0;
};

/**
 * Accumulates the visible trace of one experiment.  Attach points
 * register a callback into the observed component; the observer must
 * outlive every component it is attached to (or the component must
 * not be exercised afterwards).
 */
class ChannelObserver
{
  public:
    void
    record(TraceEventKind kind, std::uint64_t addr, Tick at)
    {
        events_.push_back(TraceEvent{kind, addr, at});
    }

    const std::vector<TraceEvent> &events() const { return events_; }
    void clear() { events_.clear(); }

    /** Observe DRAM CAS activity on one channel. */
    void attach(dram::DramChannel &channel);

    /** Observe SDIMM link-bus transactions. */
    void attach(sdimm::LinkBus &bus);

    /** Observe bucket read/write sequences (functional layer). */
    void attach(oram::BucketStore &store);

  private:
    std::vector<TraceEvent> events_;
};

/**
 * Attach @p observer to every externally visible channel of
 * @p backend: the CPU DRAM channels of the NonSecure and Freecursive
 * backends, or the CPU link buses of the Independent and Split
 * backends (an SDIMM's internal channels are NOT visible to a
 * channel-snooping adversary -- that is the point of the design).
 * Returns the number of attach points (0 for an unknown backend type).
 */
unsigned attachToBackend(MemoryBackend &backend,
                         ChannelObserver &observer);

} // namespace secdimm::verify

#endif // SECUREDIMM_VERIFY_CHANNEL_OBSERVER_HH
