/**
 * @file
 * Quantitative leak measurement.  Where the trace checker renders a
 * binary indistinguishable/distinguishable verdict, this module
 * MEASURES how much a visible channel tells the adversary, in bits
 * per access:
 *
 *  - a plug-in mutual-information estimator over discrete symbol
 *    pairs, bias-corrected against shuffled pairings and reported
 *    with a bootstrap confidence interval;
 *
 *  - the PLB locality experiment the paper accepts as a deliberate
 *    leak (Freecursive's recursion depth depends on PosMap locality,
 *    Section II-D): a locality-phased workload is driven through a
 *    design and MI between the secret phase and the visible
 *    per-request channel activity is estimated.  Freecursive measures
 *    nonzero (its CI excludes 0); flat-PosMap designs measure ~0;
 *
 *  - deliberately-leaky trace transforms (ordering and timing) used
 *    as positive controls: they preserve every marginal the v1
 *    checker tests while encoding a secret in event order or event
 *    rhythm, so only the second-order statistics (timing_stats.hh)
 *    catch them;
 *
 *  - a thread-safe ScheduleRecorder + schedule comparison for
 *    concurrency-sound checking of the multi-threaded serve frontend
 *    (the recorder is the observer hook ShardedSecureMemory exposes).
 *
 * The sdimm_leakmeter CLI (tools/) drives these over every secure
 * DesignPoint and emits a JSON report; docs/VERIFICATION.md explains
 * how to read it.
 */

#ifndef SECUREDIMM_VERIFY_LEAK_METER_HH
#define SECUREDIMM_VERIFY_LEAK_METER_HH

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "util/types.hh"
#include "verify/timing_stats.hh"
#include "verify/trace_checker.hh"

namespace secdimm::verify
{

/* ------------------------------------------------------------------ */
/* Mutual-information estimation                                       */
/* ------------------------------------------------------------------ */

/** Knobs of the MI estimator. */
struct MiOptions
{
    /** Bootstrap replicates behind the confidence interval. */
    unsigned bootstrap = 200;

    /** Shuffled pairings per bias estimate. */
    unsigned shuffles = 32;

    /** Shuffles per bootstrap replicate (bias inside the CI). */
    unsigned shufflesPerReplicate = 8;

    /** Symbol alphabets larger than this are range-binned down. */
    std::size_t maxSymbols = 64;

    /** Seed of every internal draw (deterministic campaigns). */
    std::uint64_t seed = 0x3b1a5u;
};

/** Point estimate + uncertainty of one MI measurement. */
struct MiEstimate
{
    /** Bias-corrected estimate, floored at 0 (the reported number). */
    double bitsPerAccess = 0.0;
    /** Uncorrected plug-in estimate. */
    double rawBits = 0.0;
    /** Estimated small-sample bias (mean MI of shuffled pairings). */
    double biasBits = 0.0;
    /** 95% bootstrap percentile interval of the corrected estimate.
     *  ciLow may be negative: that is what "consistent with zero
     *  leak" looks like. */
    double ciLow = 0.0;
    double ciHigh = 0.0;
    std::size_t samples = 0;

    /** The CI excludes zero: the channel measurably leaks. */
    bool leakDetected() const { return ciLow > 1e-9; }

    std::string summary() const;
};

/**
 * Estimate I(X;Y) in bits from paired discrete observations.  The
 * plug-in estimate is bias-corrected by subtracting the mean MI of
 * opts.shuffles random re-pairings (which destroys any dependence
 * while keeping both marginals), and the CI comes from
 * opts.bootstrap resampled replicates, each bias-corrected the same
 * way.  x and y must have equal, nonzero length.
 */
MiEstimate estimateMutualInformation(const std::vector<unsigned> &x,
                                     const std::vector<unsigned> &y,
                                     const MiOptions &opts = {});

/* ------------------------------------------------------------------ */
/* The PLB locality experiment                                         */
/* ------------------------------------------------------------------ */

/** Designs the built-in experiment knows how to build. */
enum class LeakDesign
{
    PathOram,    ///< Flat PosMap: recursion depth is constant.
    Freecursive, ///< Recursive PosMaps + PLB: depth tracks locality.
};

const char *leakDesignName(LeakDesign design);

/** Shape of the locality-phased workload. */
struct PlbLeakOptions
{
    /** Requests driven (= MI sample count). */
    std::size_t requests = 3000;

    /** Requests per phase; the secret phase label flips per phase. */
    std::size_t phaseLen = 16;

    /** Blocks a local phase confines itself to. */
    std::size_t localityWindow = 8;

    /** Data-tree depth (capacity = 2^(levels+1) blocks at Z=4). */
    unsigned dataLevels = 11;

    /** PLB capacity in PosMap blocks (Freecursive only). */
    std::size_t plbEntries = 64;

    std::uint64_t seed = 1;

    MiOptions mi;
};

/** Everything one leak measurement produced. */
struct LeakReport
{
    std::string design;
    MiEstimate mi;
    /** Mean visible events per request in each phase (descriptive). */
    double meanVisibleLocal = 0.0;
    double meanVisibleScatter = 0.0;
    std::size_t requests = 0;

    std::string summary() const;
    /** One compact JSON object (the CLI embeds it per design). */
    std::string toJson() const;
};

/**
 * Run the locality-phased workload against a freshly built design and
 * estimate MI between the secret phase label and the externally
 * visible per-request bucket-store activity.
 */
LeakReport measurePlbLocalityLeak(LeakDesign design,
                                  const PlbLeakOptions &opts = {});

/**
 * Generic form for protocols the built-in experiment cannot
 * construct (the CLI uses this for the SDIMM designs): the harness
 * draws the workload, calls @p access for every request, and reads
 * @p visibleCount (cumulative externally visible event count) before
 * and after to obtain the per-request observable.  @p capacityBlocks
 * bounds the drawn addresses.
 */
LeakReport measureLocalityLeakWith(
    const std::string &design_name, std::uint64_t capacity_blocks,
    const PlbLeakOptions &opts,
    const std::function<void(Addr)> &access,
    const std::function<std::uint64_t()> &visibleCount);

/* ------------------------------------------------------------------ */
/* Deliberately-leaky positive controls                                */
/* ------------------------------------------------------------------ */

/**
 * Ordering leak: sort each consecutive window of @p window events by
 * address, keeping every tick in place -- the schedule a
 * batch-scheduler that orders requests by (secret) address would
 * emit.  Marginal address/kind/count statistics are EXACTLY
 * preserved (same multiset, same timestamps), so compareTraces
 * passes; compareAutocorrelation fails on the address series.
 */
std::vector<TraceEvent>
injectOrderingLeak(std::vector<TraceEvent> events, std::size_t window = 8);

/**
 * Timing leak: delay everything after an event whose address falls in
 * [hot_lo, hot_hi) by @p extra_ticks -- a controller that takes a
 * (secret-dependent) slow path.  The event sequence is untouched, so
 * the v1 checker (which ignores timestamps entirely) passes;
 * gapPermutationTest and compareGapProfiles fail.
 */
std::vector<TraceEvent>
injectTimingLeak(std::vector<TraceEvent> events, std::uint64_t hot_lo,
                 std::uint64_t hot_hi, Tick extra_ticks);

/* ------------------------------------------------------------------ */
/* Concurrency-sound checking                                          */
/* ------------------------------------------------------------------ */

/** One processed request, as the shard workers interleaved them. */
struct ScheduleEvent
{
    unsigned shard = 0;
    bool write = false;
    /** Global completion order (assigned under the recorder lock). */
    std::uint64_t seq = 0;
};

/**
 * Thread-safe sink for the serve layer's per-request observer hook
 * (ShardedSecureMemory::setScheduleRecorder).  Workers call record()
 * concurrently; tests read events() after drain()/shutdown().
 */
class ScheduleRecorder
{
  public:
    void
    record(unsigned shard, bool write)
    {
        std::lock_guard<std::mutex> lk(mu_);
        events_.push_back(
            ScheduleEvent{shard, write,
                          static_cast<std::uint64_t>(events_.size())});
    }

    std::vector<ScheduleEvent>
    events() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return events_;
    }

    std::size_t
    size() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return events_.size();
    }

    void
    clear()
    {
        std::lock_guard<std::mutex> lk(mu_);
        events_.clear();
    }

  private:
    mutable std::mutex mu_;
    std::vector<ScheduleEvent> events_;
};

/** Render a schedule as a trace (addr = shard id, at = seq). */
std::vector<TraceEvent>
scheduleToTrace(const std::vector<ScheduleEvent> &schedule);

/** Verdict over a pair of interleaved schedules. */
struct ScheduleComparison
{
    /** Marginal shard-occupancy + kind-mix comparison (v1 semantics). */
    TraceComparison marginal;
    /** Ordering comparison over the global shard-id sequence. */
    AcfComparison ordering;
    /**
     * The concurrency-sound core: per shard, the ACF profile of that
     * shard's read/write indicator SUBSEQUENCE.  Per-shard order is
     * exactly the shard's FIFO service order -- deterministic given
     * the submissions, and untouched by how the OS interleaved the
     * worker threads -- so a secret-keyed within-shard reordering
     * (writes first, sorted batches) is caught here even when
     * scheduler noise blurs the global interleaving.
     */
    double maxPerShardKindDelta = 0.0;
    unsigned worstShard = 0;
    double perShardBand = 0.0;
    bool perShardPass = false;
    bool pass = false;

    std::string summary() const;
};

/**
 * Compare two interleaved schedules recorded under workloads that
 * differ only in their secret: which shards served, in what mix, in
 * what global order, and in what per-shard order must all be
 * statistically alike.
 */
ScheduleComparison
compareSchedules(const std::vector<ScheduleEvent> &a,
                 const std::vector<ScheduleEvent> &b,
                 const DeepCheckOptions &opts = {});

} // namespace secdimm::verify

#endif // SECUREDIMM_VERIFY_LEAK_METER_HH
