#include "verify/channel_observer.hh"

#include "dram/channel.hh"
#include "oram/bucket_store.hh"
#include "oram/freecursive_backend.hh"
#include "oram/nonsecure_backend.hh"
#include "sdimm/independent_backend.hh"
#include "sdimm/link_bus.hh"
#include "sdimm/split_backend.hh"
#include "trace/memory_backend.hh"

namespace secdimm::verify
{

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::Read: return "READ";
      case TraceEventKind::Write: return "WRITE";
      case TraceEventKind::ShortCmd: return "SHORT_CMD";
      case TraceEventKind::Probe: return "PROBE";
      case TraceEventKind::Transfer: return "TRANSFER";
      case TraceEventKind::StoreRead: return "STORE_READ";
      case TraceEventKind::StoreWrite: return "STORE_WRITE";
    }
    return "UNKNOWN";
}

void
ChannelObserver::attach(dram::DramChannel &channel)
{
    channel.setCasObserver(
        [this](const dram::DramRequest &req, Tick data_end) {
            record(req.write ? TraceEventKind::Write
                             : TraceEventKind::Read,
                   req.addr, data_end);
        });
}

void
ChannelObserver::attach(sdimm::LinkBus &bus)
{
    bus.setObserver([this](const sdimm::LinkBusEvent &e) {
        if (e.isTransfer)
            record(TraceEventKind::Transfer, e.bytes, e.at);
        else
            record(e.isProbe ? TraceEventKind::Probe
                             : TraceEventKind::ShortCmd,
                   0, e.at);
    });
}

void
ChannelObserver::attach(oram::BucketStore &store)
{
    store.setAccessObserver([this](bool write, std::uint64_t seq) {
        record(write ? TraceEventKind::StoreWrite
                     : TraceEventKind::StoreRead,
               seq, 0);
    });
}

unsigned
attachToBackend(MemoryBackend &backend, ChannelObserver &observer)
{
    if (auto *ns = dynamic_cast<oram::NonSecureBackend *>(&backend)) {
        dram::DramSystem &sys = ns->dramSystem();
        for (unsigned c = 0; c < sys.channelCount(); ++c)
            observer.attach(sys.channel(c));
        return sys.channelCount();
    }
    if (auto *fc = dynamic_cast<oram::FreecursiveBackend *>(&backend)) {
        dram::DramSystem &sys = fc->dramSystem();
        for (unsigned c = 0; c < sys.channelCount(); ++c)
            observer.attach(sys.channel(c));
        return sys.channelCount();
    }
    if (auto *ib = dynamic_cast<sdimm::IndependentBackend *>(&backend)) {
        for (unsigned b = 0; b < ib->busCount(); ++b)
            observer.attach(ib->bus(b));
        return ib->busCount();
    }
    if (auto *sb = dynamic_cast<sdimm::SplitBackend *>(&backend)) {
        for (unsigned b = 0; b < sb->busCount(); ++b)
            observer.attach(sb->bus(b));
        return sb->busCount();
    }
    return 0;
}

} // namespace secdimm::verify
