#include "verify/invariant_audit.hh"

#include <cstdlib>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "analytic/mm1k.hh"
#include "oram/path_oram.hh"
#include "oram/recursive_oram.hh"
#include "sdimm/indep_split_oram.hh"
#include "sdimm/independent_oram.hh"
#include "sdimm/split_oram.hh"
#include "sdimm/transfer_queue.hh"

namespace secdimm::verify
{

void
AuditReport::merge(const AuditReport &other)
{
    violations.insert(violations.end(), other.violations.begin(),
                      other.violations.end());
    checksRun += other.checksRun;
}

void
AuditReport::check(bool condition, const std::string &what)
{
    ++checksRun;
    if (!condition)
        violations.push_back(what);
}

std::string
AuditReport::summary() const
{
    std::ostringstream os;
    if (ok()) {
        os << "clean, " << checksRun << " checks";
        return os.str();
    }
    os << violations.size() << " violation(s) in " << checksRun
       << " checks:";
    for (std::size_t i = 0; i < violations.size() && i < 4; ++i)
        os << " [" << violations[i] << "]";
    if (violations.size() > 4)
        os << " ...";
    return os.str();
}

namespace
{

/**
 * Walk one PathOram's tree + stash.  @p label prefixes messages;
 * @p resident, when given, collects (addr -> local leaf) for a
 * caller-side global cross-check.
 */
void
walkPathOram(const oram::PathOram &o, bool check_posmap,
             const std::string &label, AuditReport &r,
             std::unordered_map<Addr, LeafId> *resident = nullptr)
{
    const oram::OramParams &p = o.params();
    const unsigned L = p.levels;
    const LeafId leaves = p.numLeaves();
    std::unordered_set<Addr> seen;

    const auto note = [&](Addr addr, LeafId leaf) {
        if (resident != nullptr)
            (*resident)[addr] = leaf;
    };

    r.check(o.stash().size() <= o.stash().capacity(),
            label + ": stash exceeds its capacity");

    for (unsigned level = 0; level <= L; ++level) {
        const std::uint64_t width = std::uint64_t{1} << level;
        for (std::uint64_t index = 0; index < width; ++index) {
            const oram::BucketPos pos{level, index};
            const std::uint64_t seq = o.layout().bucketSeq(pos);
            const oram::BucketReadResult br = o.store().readBucket(seq);
            {
                std::ostringstream os;
                os << label << ": bucket " << seq
                   << " failed authentication";
                r.check(br.authentic, os.str());
            }
            for (unsigned s = 0; s < br.bucket.z(); ++s) {
                const oram::BlockSlot &slot = br.bucket.slot(s);
                if (!slot.valid())
                    continue;
                {
                    std::ostringstream os;
                    os << label << ": block " << slot.addr << " leaf "
                       << slot.leaf << " out of range";
                    r.check(slot.leaf < leaves, os.str());
                }
                if (slot.leaf < leaves) {
                    std::ostringstream os;
                    os << label << ": block " << slot.addr
                       << " at bucket (" << level << "," << index
                       << ") is off its path to leaf " << slot.leaf;
                    r.check(oram::pathBucket(slot.leaf, level, L).index ==
                                index,
                            os.str());
                }
                {
                    std::ostringstream os;
                    os << label << ": block " << slot.addr
                       << " duplicated in the tree";
                    r.check(seen.insert(slot.addr).second, os.str());
                }
                if (check_posmap) {
                    std::ostringstream os;
                    os << label << ": block " << slot.addr
                       << " tree leaf disagrees with PosMap";
                    r.check(slot.addr < p.capacityBlocks() &&
                                o.leafOf(slot.addr) == slot.leaf,
                            os.str());
                }
                note(slot.addr, slot.leaf);
            }
        }
    }

    for (const auto &kv : o.stash().entries()) {
        const oram::StashEntry &e = kv.second;
        {
            std::ostringstream os;
            os << label << ": stash block " << e.addr << " leaf "
               << e.leaf << " out of range";
            r.check(e.leaf < leaves, os.str());
        }
        {
            std::ostringstream os;
            os << label << ": block " << e.addr
               << " in both tree and stash";
            r.check(seen.insert(e.addr).second, os.str());
        }
        if (check_posmap) {
            std::ostringstream os;
            os << label << ": stash block " << e.addr
               << " leaf disagrees with PosMap";
            r.check(e.addr < p.capacityBlocks() &&
                        o.leafOf(e.addr) == e.leaf,
                    os.str());
        }
        note(e.addr, e.leaf);
    }
}

} // namespace

AuditReport
auditPathOram(const oram::PathOram &o, bool check_posmap)
{
    AuditReport r;
    walkPathOram(o, check_posmap, "path_oram", r);
    return r;
}

AuditReport
auditRecursiveOram(const oram::RecursiveOram &o)
{
    AuditReport r;
    // Data tree and PosMap trees alike are driven with explicit
    // leaves (the recursion owns every mapping), so all are audited
    // structurally.
    for (unsigned t = 0; t <= o.posmapLevels(); ++t) {
        std::ostringstream label;
        label << "recursive_oram.tree" << t;
        walkPathOram(o.tree(t), false, label.str(), r);
    }
    return r;
}

AuditReport
auditIndependentOram(const sdimm::IndependentOram &o)
{
    AuditReport r;
    const unsigned local_levels = o.params().perSdimm.levels;
    const LeafId local_leaves = o.params().perSdimm.numLeaves();

    // addr -> (sdimm, local leaf) across trees, stashes, and queues.
    std::unordered_map<Addr, std::pair<unsigned, LeafId>> where;
    const auto place = [&](Addr addr, unsigned i, LeafId leaf) {
        std::ostringstream os;
        os << "independent: block " << addr
           << " resident in two SDIMMs";
        r.check(where.emplace(addr, std::make_pair(i, leaf)).second,
                os.str());
    };

    for (unsigned i = 0; i < o.numSdimms(); ++i) {
        // A quarantined SDIMM legitimately holds stale copies of
        // blocks that were evacuated to survivors; its frozen state
        // is outside every remaining invariant.
        if (o.isQuarantined(i))
            continue;
        const sdimm::SecureBuffer &buf = o.buffer(i);
        std::ostringstream label;
        label << "independent.sdimm" << i;
        std::unordered_map<Addr, LeafId> resident;
        walkPathOram(buf.oram(), false, label.str(), r, &resident);
        for (const auto &kv : resident)
            place(kv.first, i, kv.second);

        r.merge(auditTransferQueue(buf.transferQueue()));
        for (const oram::StashEntry &e : buf.transferQueue().entries()) {
            {
                std::ostringstream os;
                os << label.str() << ": queued block " << e.addr
                   << " leaf " << e.leaf << " out of range";
                r.check(e.leaf < local_leaves, os.str());
            }
            place(e.addr, i, e.leaf);
        }
    }

    // Global placement: the PosMap's top leaf bits select the SDIMM a
    // resident block must live in, the low bits its local leaf.
    for (const auto &kv : where) {
        const Addr addr = kv.first;
        const LeafId global = o.leafOf(addr);
        const auto expect_sdimm =
            static_cast<unsigned>(global >> local_levels);
        const LeafId expect_local =
            global & ((LeafId{1} << local_levels) - 1);
        std::ostringstream os;
        os << "independent: block " << addr << " at sdimm "
           << kv.second.first << " leaf " << kv.second.second
           << ", PosMap says sdimm " << expect_sdimm << " leaf "
           << expect_local;
        r.check(kv.second.first == expect_sdimm &&
                    kv.second.second == expect_local,
                os.str());
    }
    return r;
}

AuditReport
auditSplitOram(const sdimm::SplitOram &o, bool check_posmap)
{
    AuditReport r;
    r.violations = o.auditInvariants(check_posmap, &r.checksRun);
    return r;
}

AuditReport
auditIndepSplitOram(const sdimm::IndepSplitOram &o)
{
    AuditReport r;
    for (unsigned g = 0; g < o.groups(); ++g) {
        // Evacuated (quarantined) groups keep stale block copies.
        if (o.isGroupQuarantined(g))
            continue;
        r.merge(auditSplitOram(o.group(g), false));
    }
    return r;
}

AuditReport
auditTransferQueue(const sdimm::TransferQueue &q)
{
    AuditReport r;
    const sdimm::TransferQueueStats &s = q.stats();

    {
        std::ostringstream os;
        os << "xfer: conservation broken: " << s.arrivals
           << " arrivals != " << s.services << " services + " << q.size()
           << " queued + " << s.overflows << " overflows";
        r.check(s.arrivals == s.services + q.size() + s.overflows,
                os.str());
    }
    r.check(q.size() <= q.capacity(), "xfer: occupancy over capacity");
    r.check(s.maxOccupancy <= q.capacity(),
            "xfer: recorded max occupancy over capacity");
    r.check(s.overflows == 0 || q.capacity() == 0 ||
                s.maxOccupancy == q.capacity(),
            "xfer: overflow recorded without a full queue");
    r.check(s.forcedDrains == 0 || q.capacity() == 0 ||
                s.maxOccupancy == q.capacity(),
            "xfer: forced drain recorded without a full queue");
    r.check(s.maxOccupancy >= q.size(),
            "xfer: high-water mark below current occupancy");
    r.check((s.arrivals - s.overflows > 0) == (s.maxOccupancy > 0),
            "xfer: high-water mark inconsistent with accepted arrivals");

    // The Section IV-C model: full-queue arrivals ~ the M/M/1/K
    // blocking probability.  A forced drain is exactly an arrival that
    // would have been blocked (the secure buffer runs one extra
    // accessORAM instead of dropping), so it counts against the same
    // bound as a raw overflow.  Allow an order of magnitude of slack
    // (plus one event) before calling the implementation out of line.
    if (s.arrivals > 0 && q.capacity() > 0) {
        const double predicted = analytic::transferQueueOverflow(
            q.drainProb(), static_cast<unsigned>(q.capacity()));
        const double bound =
            10.0 * predicted * static_cast<double>(s.arrivals) + 1.0;
        const std::uint64_t blocked = s.overflows + s.forcedDrains;
        std::ostringstream os;
        os << "xfer: " << blocked << " full-queue arrivals ("
           << s.overflows << " overflows + " << s.forcedDrains
           << " forced drains) in " << s.arrivals
           << " arrivals exceeds 10x the queueing-model bound ("
           << bound << ")";
        r.check(static_cast<double>(blocked) <= bound, os.str());
    }
    return r;
}

AuditSettings
AuditSettings::fromEnv(AuditSettings base)
{
    if (const char *v = std::getenv("SDIMM_AUDIT"))
        base.enabled = std::atoi(v) != 0;
    if (const char *v = std::getenv("SDIMM_AUDIT_INTERVAL")) {
        const long n = std::atol(v);
        if (n > 0)
            base.interval = static_cast<std::uint64_t>(n);
    }
    return base;
}

} // namespace secdimm::verify
