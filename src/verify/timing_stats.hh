/**
 * @file
 * Second-order trace statistics: everything the marginal checker
 * (trace_checker.hh) is blind to.  Two instruments:
 *
 *  1. Lag-k autocorrelation comparison -- does the ORDER of events
 *     (address series) or the RHYTHM of events (inter-event gap
 *     series) differ between two traces whose marginal histograms
 *     match?  A scheduler that reorders or re-times events based on a
 *     secret changes autocorrelation while leaving every marginal
 *     untouched.
 *
 *  2. Permutation test over inter-access gaps -- within ONE trace,
 *     does the gap after an event depend on which address bin the
 *     event touched?  The null distribution is built by permuting the
 *     observed gaps over the events (seeded, deterministic), so the
 *     p-value is exact up to Monte-Carlo resolution and needs no
 *     distributional assumption.
 *
 * Both are quantitative: they report effect sizes and null bands, not
 * just booleans, so docs/VERIFICATION.md can explain what a FAIL
 * means.  See leak_meter.hh for the mutual-information estimator that
 * complements these with a bits-per-access measurement.
 */

#ifndef SECUREDIMM_VERIFY_TIMING_STATS_HH
#define SECUREDIMM_VERIFY_TIMING_STATS_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "verify/channel_observer.hh"

namespace secdimm::verify
{

/* ------------------------------------------------------------------ */
/* Series extraction                                                   */
/* ------------------------------------------------------------------ */

/** The address-like value of every event, in trace order. */
std::vector<double> addressSeries(const std::vector<TraceEvent> &events);

/**
 * Inter-event gap series: gaps[i] = at[i+1] - at[i] (length n-1).
 * Functional-layer traces record at == 0 for every event; the result
 * is then all-zero and the gap statistics degenerate to "no signal"
 * (variance 0), which the tests below treat as a vacuous pass.
 */
std::vector<double> gapSeries(const std::vector<TraceEvent> &events);

/**
 * Pearson autocorrelation of @p series at @p lag.  Returns 0 for a
 * (near-)constant series or when fewer than lag+2 samples exist --
 * a series with no variance carries no ordering information.
 */
double lagAutocorrelation(const std::vector<double> &series,
                          unsigned lag);

/* ------------------------------------------------------------------ */
/* 1. Two-trace ordering/rhythm comparison                             */
/* ------------------------------------------------------------------ */

/** Knobs of the second-order comparisons. */
struct TimingCheckOptions
{
    /** Autocorrelation lags tested: 1..maxLag. */
    unsigned maxLag = 8;

    /**
     * Width of the accepted |acf_a(k) - acf_b(k)| band, as a multiple
     * of the white-noise standard error sqrt(1/na + 1/nb).  Two
     * traces drawn from the same process keep the delta inside a few
     * standard errors; 6 leaves comfortable slack above sample noise
     * while ordering leaks (sorted windows, secret-keyed swaps) move
     * lag-1 autocorrelation by 0.2+.
     */
    double acfBandScale = 6.0;

    /** Hard floor of the band (guards tiny traces). */
    double acfBandFloor = 0.05;

    /** Permutations drawn for the gap-dependence null distribution. */
    unsigned permutations = 200;

    /** Reject H0 (gap independent of address bin) below this p. */
    double permAlpha = 0.01;

    /** Address bins the permutation test groups gaps by. */
    std::size_t permAddressBins = 8;

    /** Seed of the permutation draw (deterministic campaigns). */
    std::uint64_t seed = 0x7171u;

    /**
     * Max per-bin relative difference of the two traces' mean-gap
     * profiles (compareGapProfiles).  Benign address-timing coupling
     * (DRAM row hits) shapes BOTH profiles identically; only a
     * secret-dependent slow path moves one and not the other.
     */
    double maxGapProfileDelta = 0.25;

    /** Bins with fewer samples than this (in either trace) are
     *  skipped by compareGapProfiles. */
    std::size_t minBinSamples = 8;
};

/** Outcome of the two-trace autocorrelation comparison. */
struct AcfComparison
{
    /** max_k |acf_a(k) - acf_b(k)| over the address series. */
    double maxAddressDelta = 0.0;
    /** Same over the gap series. */
    double maxGapDelta = 0.0;
    /** Lag at which each maximum was observed. */
    unsigned worstAddressLag = 0;
    unsigned worstGapLag = 0;
    /** Accepted band for this pair of trace lengths. */
    double band = 0.0;
    bool pass = false;

    std::string summary() const;
};

/**
 * Compare the lag-1..maxLag autocorrelation profiles of the two
 * traces' address and gap series.  PASS iff both maximum deltas stay
 * inside the band.  Marginal-preserving reorderings (the classic
 * "batch scheduler sorts by address" leak) fail here while sailing
 * through compareTraces().
 */
AcfComparison compareAutocorrelation(const std::vector<TraceEvent> &a,
                                     const std::vector<TraceEvent> &b,
                                     const TimingCheckOptions &opts = {});

/* ------------------------------------------------------------------ */
/* 2. Within-trace gap/address permutation test                        */
/* ------------------------------------------------------------------ */

/** Outcome of the permutation test over inter-access gaps. */
struct GapPermutationResult
{
    /**
     * Observed statistic: between-bin variance of the mean gap,
     * weighted by bin population (one-way ANOVA numerator).  Bigger
     * means the gap depends more on the address bin.
     */
    double observedStat = 0.0;
    /** Monte-Carlo p-value: P(stat_perm >= stat_obs | H0). */
    double pValue = 1.0;
    /** Permutations actually drawn. */
    unsigned permutations = 0;
    /** True when the trace carries no usable gap signal (all at==0). */
    bool degenerate = false;
    bool pass = false;

    std::string summary() const;
};

/**
 * Test whether the gap AFTER an event depends on the event's address
 * bin.  H0 (oblivious timing) is rejected at opts.permAlpha; the
 * null distribution comes from opts.permutations seeded shuffles of
 * the gap series against the address labels.  A trace whose events
 * carry no timestamps (functional layer) passes vacuously with
 * degenerate == true.
 */
GapPermutationResult
gapPermutationTest(const std::vector<TraceEvent> &events,
                   const TimingCheckOptions &opts = {});

/* ------------------------------------------------------------------ */
/* 3. Two-trace gap-profile comparison                                 */
/* ------------------------------------------------------------------ */

/** Outcome of the cross-trace mean-gap-per-address-bin comparison. */
struct GapProfileComparison
{
    /** max over shared bins of |profileA - profileB| where profile =
     *  bin mean gap / trace grand mean gap. */
    double maxDelta = 0.0;
    std::size_t worstBin = 0;
    double threshold = 0.0;
    /** Bins that had enough samples in both traces. */
    std::size_t binsCompared = 0;
    /** Neither trace carries timing (all at==0): vacuous pass. */
    bool degenerate = false;
    bool pass = false;

    std::string summary() const;
};

/**
 * The DIFFERENTIAL timing check: bin both traces' addresses over
 * their combined range, normalize each trace's per-bin mean gap by
 * its own grand mean, and compare the profiles bin by bin.  Benign
 * structure (row-buffer locality, bank timing) shifts both traces'
 * profiles identically and cancels; a secret-keyed slow path fails.
 * This is the gate deepCompareTraces uses; the within-trace
 * permutation test above measures total timing-channel structure,
 * secret-dependent or not.
 */
GapProfileComparison
compareGapProfiles(const std::vector<TraceEvent> &a,
                   const std::vector<TraceEvent> &b,
                   const TimingCheckOptions &opts = {});

} // namespace secdimm::verify

#endif // SECUREDIMM_VERIFY_TIMING_STATS_HH
