/**
 * @file
 * Deterministic seeded fuzzer (no external dependencies) for the
 * attacker-reachable parsers: the Table I command codec, the byte
 * frame codec, sealed link-session messages, and the fixed-size
 * protocol message bodies.  Every campaign is a pure function of its
 * seed -- a failure reproduces from (seed, iterations) alone, which is
 * what the CI smoke step and docs/VERIFICATION.md rely on.
 *
 * The invariant under test is uniform: malformed input is REJECTED
 * (an error code or nullopt), never asserted on, never misparsed into
 * a valid-looking result, and round-trips of valid input are exact.
 */

#ifndef SECUREDIMM_VERIFY_FUZZ_HH
#define SECUREDIMM_VERIFY_FUZZ_HH

#include <cstdint>
#include <string>

namespace secdimm::verify
{

/** Outcome of one fuzz campaign. */
struct FuzzResult
{
    std::uint64_t iterations = 0;
    std::uint64_t failures = 0;
    /** First failing case, for reproduction ("" when ok). */
    std::string firstFailure;

    bool ok() const { return failures == 0; }
};

/**
 * Fuzz decodeBusCommand/encodeCommand: every Table I command
 * round-trips, random bus activity classifies into exactly one of
 * {Command, NormalAccess, Malformed}, and the classification obeys
 * the reserved-region rule.
 */
FuzzResult fuzzCommandCodec(std::uint64_t seed, std::uint64_t iters);

/**
 * Fuzz serializeFrame/parseFrame: valid frames round-trip exactly;
 * random buffers, truncations, and bit flips never crash and map to
 * a definite FrameError.
 */
FuzzResult fuzzCommandFrames(std::uint64_t seed, std::uint64_t iters);

/**
 * Fuzz LinkEndpoint seal/unseal: honest messages unseal to the
 * original plaintext; any single bit flip (opcode, seq, body, MAC),
 * truncation, or replay is rejected with nullopt.
 */
FuzzResult fuzzLinkSession(std::uint64_t seed, std::uint64_t iters);

/**
 * Fuzz the fixed-size message-body codecs (ACCESS / response /
 * APPEND): round-trips are exact and wrong-size bodies yield nullopt.
 */
FuzzResult fuzzMessageCodecs(std::uint64_t seed, std::uint64_t iters);

/**
 * Fuzz the detect-and-retry recovery layer (docs/FAULTS.md): each
 * iteration builds one small secure protocol instance (Independent,
 * Split, or INDEP-SPLIT in rotation) under a randomized FaultPlan and
 * a randomized retry budget, runs a write/read-back workload, and
 * demands the recovery invariants: every injected fault is detected
 * (fault.detected == fault.injected), a campaign with no exhausted
 * budget recovers every fault, returns bit-exact data, and keeps
 * integrityOk(); a campaign WITH an exhausted budget fail-stops
 * (integrityOk() false) instead of serving silently corrupt data.
 *
 * One iteration is a whole mini campaign (dozens of accesses), so
 * meaningful counts are ~1e3-1e5, not the 1e7 of the parser fuzzers.
 */
FuzzResult fuzzFaultRecovery(std::uint64_t seed, std::uint64_t iters);

/**
 * Fuzz the permanent-fault path (docs/FAULTS.md): each iteration
 * builds one secure design (INDEP-2, INDEP-4, or INDEP-SPLIT 2x2 in
 * rotation) under DegradationPolicy::Degraded, kills one seeded unit
 * (stuck-at from boot or hard death at a seeded access index, plus
 * optional light transient noise), runs a write/read-back workload
 * across the death, and demands: the ledger identities hold
 * (detected == injected, recovered + unrecovered == detected), and --
 * whenever nothing exhausted -- the dead unit is quarantined, its
 * blocks evacuated, every block reads back bit-exact, and
 * integrityOk() stays true.
 *
 * One iteration is a whole campaign; meaningful counts are ~1e2-1e4.
 */
FuzzResult fuzzPermanentFaults(std::uint64_t seed, std::uint64_t iters);

} // namespace secdimm::verify

#endif // SECUREDIMM_VERIFY_FUZZ_HH
