/**
 * @file
 * Runtime invariant audits: structural walks over the functional ORAM
 * implementations asserting the properties the correctness and
 * security arguments rest on -- bucket placement respects the path
 * invariant, every MAC verifies, stashes respect their bounds, no
 * block exists in two places, and transfer-queue counters obey the
 * Section IV-C queueing model.
 *
 * Audits are read-only and report violations as strings instead of
 * asserting, so tests can both demand cleanliness after heavy churn
 * AND inject corruption and demand detection.  The facade
 * (core::SecureMemorySystem) can run them periodically when enabled
 * via AuditSettings / the SDIMM_AUDIT environment variable.
 */

#ifndef SECUREDIMM_VERIFY_INVARIANT_AUDIT_HH
#define SECUREDIMM_VERIFY_INVARIANT_AUDIT_HH

#include <cstdint>
#include <string>
#include <vector>

namespace secdimm::oram
{
class PathOram;
class RecursiveOram;
}
namespace secdimm::sdimm
{
class IndependentOram;
class SplitOram;
class IndepSplitOram;
class TransferQueue;
}

namespace secdimm::verify
{

/** Outcome of one audit pass. */
struct AuditReport
{
    std::vector<std::string> violations;
    std::uint64_t checksRun = 0;

    bool ok() const { return violations.empty(); }

    /** Absorb another report's findings. */
    void merge(const AuditReport &other);

    /** Record one check; appends @p what on failure. */
    void check(bool condition, const std::string &what);

    /** One-line result ("clean, N checks" or the first violations). */
    std::string summary() const;
};

/**
 * Audit one Path ORAM tree: stash within bounds, every bucket
 * authentic, every resident block's leaf in range and its bucket on
 * the block's path, no duplicate blocks (tree + stash).
 *
 * @p check_posmap additionally requires each block's stored leaf to
 * equal the tree's own PosMap entry.  Only valid for trees driven
 * through access() -- distributed frontends (SecureBuffer, recursion
 * PosMap trees) own the mapping themselves and leave the internal
 * PosMap stale, so they are audited structurally.
 *
 * NOTE: reading buckets fires any attached BucketStore observer;
 * don't audit in the middle of collecting a trace.
 */
AuditReport auditPathOram(const oram::PathOram &o, bool check_posmap);

/** Audit the data tree and every PosMap tree of a recursive ORAM. */
AuditReport auditRecursiveOram(const oram::RecursiveOram &o);

/**
 * Audit an Independent ORAM: every SDIMM's local tree (structural),
 * every transfer queue against the queueing model, and the global
 * placement invariant -- each resident block lives in exactly one
 * SDIMM, the one its global PosMap leaf selects, under the matching
 * local leaf.
 */
AuditReport auditIndependentOram(const sdimm::IndependentOram &o);

/** Audit a Split ORAM (slice MACs, counters, shares, shadow stash). */
AuditReport auditSplitOram(const sdimm::SplitOram &o, bool check_posmap);

/** Audit every Split group of an INDEP-SPLIT ORAM (structural). */
AuditReport auditIndepSplitOram(const sdimm::IndepSplitOram &o);

/**
 * Audit transfer-queue counters: conservation (arrivals = services +
 * queued + overflows), occupancy bounds, and the analytic::mm1k
 * overflow prediction -- observed overflows may not exceed the model's
 * expectation by more than an order of magnitude.
 */
AuditReport auditTransferQueue(const sdimm::TransferQueue &q);

/** When and how often the facade runs audits. */
struct AuditSettings
{
    bool enabled = false;
    std::uint64_t interval = 512; ///< Accesses between audit passes.

    /**
     * Apply the SDIMM_AUDIT (0/1) and SDIMM_AUDIT_INTERVAL
     * environment overrides to @p base.
     */
    static AuditSettings fromEnv(AuditSettings base);
    static AuditSettings fromEnv() { return fromEnv(AuditSettings{}); }
};

} // namespace secdimm::verify

#endif // SECUREDIMM_VERIFY_INVARIANT_AUDIT_HH
