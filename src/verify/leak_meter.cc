#include "verify/leak_meter.hh"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "crypto/aes128.hh"
#include "oram/path_oram.hh"
#include "oram/recursive_oram.hh"
#include "util/logging.hh"
#include "util/metrics.hh"
#include "util/rng.hh"

namespace secdimm::verify
{

namespace
{

/**
 * Dense-remap a symbol stream to 0..alphabet-1, range-binning down
 * when more than @p max_symbols distinct values occur (keeps the
 * joint table, and therefore the plug-in bias, bounded).
 */
std::vector<unsigned>
canonicalize(const std::vector<unsigned> &v, std::size_t max_symbols,
             std::size_t &alphabet)
{
    std::map<unsigned, unsigned> ids;
    for (unsigned s : v)
        ids.emplace(s, 0);
    std::vector<unsigned> out(v.size());
    if (ids.size() <= max_symbols) {
        unsigned next = 0;
        for (auto &[sym, id] : ids)
            id = next++;
        for (std::size_t i = 0; i < v.size(); ++i)
            out[i] = ids[v[i]];
        alphabet = ids.size();
        return out;
    }
    const double lo = ids.begin()->first;
    const double hi = ids.rbegin()->first;
    const double span = hi - lo;
    for (std::size_t i = 0; i < v.size(); ++i) {
        const auto b = static_cast<std::size_t>(
            (static_cast<double>(v[i]) - lo) / span *
            static_cast<double>(max_symbols));
        out[i] = static_cast<unsigned>(std::min(b, max_symbols - 1));
    }
    alphabet = max_symbols;
    return out;
}

/** Plug-in MI (bits) of two canonicalized streams. */
double
plugInMi(const std::vector<unsigned> &x, const std::vector<unsigned> &y,
         std::size_t ax, std::size_t ay)
{
    const std::size_t n = x.size();
    if (n == 0 || ax < 2 || ay < 2)
        return 0.0;
    std::vector<double> joint(ax * ay, 0.0);
    std::vector<double> px(ax, 0.0);
    std::vector<double> py(ay, 0.0);
    for (std::size_t i = 0; i < n; ++i) {
        joint[x[i] * ay + y[i]] += 1.0;
        px[x[i]] += 1.0;
        py[y[i]] += 1.0;
    }
    const double dn = static_cast<double>(n);
    double mi = 0.0;
    for (std::size_t a = 0; a < ax; ++a) {
        for (std::size_t b = 0; b < ay; ++b) {
            const double j = joint[a * ay + b];
            if (j == 0.0)
                continue;
            mi += j / dn * std::log2(j * dn / (px[a] * py[b]));
        }
    }
    return std::max(mi, 0.0);
}

/** Mean MI over @p shuffles seeded re-pairings (dependence killed). */
double
shuffledBias(std::vector<unsigned> x, const std::vector<unsigned> &y,
             std::size_t ax, std::size_t ay, unsigned shuffles,
             Rng &rng)
{
    if (shuffles == 0)
        return 0.0;
    double total = 0.0;
    for (unsigned s = 0; s < shuffles; ++s) {
        for (std::size_t i = x.size() - 1; i > 0; --i) {
            const std::size_t j =
                static_cast<std::size_t>(rng.nextBelow(i + 1));
            std::swap(x[i], x[j]);
        }
        total += plugInMi(x, y, ax, ay);
    }
    return total / shuffles;
}

} // namespace

std::string
MiEstimate::summary() const
{
    std::ostringstream os;
    os << bitsPerAccess << " bits/access (raw=" << rawBits
       << " bias=" << biasBits << " ci95=[" << ciLow << ", " << ciHigh
       << "] n=" << samples << ") "
       << (leakDetected() ? "LEAK" : "no measurable leak");
    return os.str();
}

MiEstimate
estimateMutualInformation(const std::vector<unsigned> &x,
                          const std::vector<unsigned> &y,
                          const MiOptions &opts)
{
    SD_ASSERT(x.size() == y.size());
    SD_ASSERT(!x.empty());
    SD_ASSERT(opts.maxSymbols >= 2);

    MiEstimate est;
    est.samples = x.size();

    std::size_t ax = 0;
    std::size_t ay = 0;
    const std::vector<unsigned> cx = canonicalize(x, opts.maxSymbols, ax);
    const std::vector<unsigned> cy = canonicalize(y, opts.maxSymbols, ay);

    Rng rng(opts.seed);
    est.rawBits = plugInMi(cx, cy, ax, ay);
    est.biasBits = shuffledBias(cx, cy, ax, ay, opts.shuffles, rng);
    est.bitsPerAccess = std::max(0.0, est.rawBits - est.biasBits);

    // Bootstrap CI of the bias-corrected estimate: resample pairs
    // with replacement, correct each replicate with its own (cheaper)
    // shuffle bias.  The interval is the replicate SPREAD re-centered
    // on the full-sample estimate (basic bootstrap): resampling
    // duplicates pairs, which manufactures a little genuine dependence
    // in every replicate, and a plain percentile interval would
    // inherit that uniform upward shift -- enough to push ciLow above
    // zero on independent data.
    const std::size_t n = cx.size();
    std::vector<double> reps;
    reps.reserve(opts.bootstrap);
    std::vector<unsigned> bx(n);
    std::vector<unsigned> by(n);
    for (unsigned r = 0; r < opts.bootstrap; ++r) {
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t j =
                static_cast<std::size_t>(rng.nextBelow(n));
            bx[i] = cx[j];
            by[i] = cy[j];
        }
        const double raw = plugInMi(bx, by, ax, ay);
        const double bias = shuffledBias(
            bx, by, ax, ay, opts.shufflesPerReplicate, rng);
        reps.push_back(raw - bias);
    }
    if (reps.empty()) {
        est.ciLow = est.ciHigh = est.bitsPerAccess;
        return est;
    }
    double rep_mean = 0.0;
    for (double r : reps)
        rep_mean += r;
    rep_mean /= static_cast<double>(reps.size());
    std::sort(reps.begin(), reps.end());
    const auto lo_idx = static_cast<std::size_t>(
        0.025 * static_cast<double>(reps.size()));
    const auto hi_idx = std::min(
        reps.size() - 1, static_cast<std::size_t>(
                             0.975 * static_cast<double>(reps.size())));
    const double point = est.rawBits - est.biasBits;
    est.ciLow = point + (reps[lo_idx] - rep_mean);
    est.ciHigh = point + (reps[hi_idx] - rep_mean);
    return est;
}

/* ------------------------------------------------------------------ */
/* PLB locality experiment                                             */
/* ------------------------------------------------------------------ */

const char *
leakDesignName(LeakDesign design)
{
    switch (design) {
      case LeakDesign::PathOram:
        return "PathOram";
      case LeakDesign::Freecursive:
        return "Freecursive";
    }
    return "?";
}

std::string
LeakReport::summary() const
{
    std::ostringstream os;
    os << design << ": " << mi.summary() << " visible/req local="
       << meanVisibleLocal << " scatter=" << meanVisibleScatter;
    return os.str();
}

std::string
LeakReport::toJson() const
{
    std::ostringstream os;
    os << "{\"design\": " << util::jsonQuote(design)
       << ", \"requests\": " << requests
       << ", \"mi_bits_per_access\": " << util::jsonNumber(mi.bitsPerAccess)
       << ", \"mi_raw_bits\": " << util::jsonNumber(mi.rawBits)
       << ", \"mi_bias_bits\": " << util::jsonNumber(mi.biasBits)
       << ", \"ci_low\": " << util::jsonNumber(mi.ciLow)
       << ", \"ci_high\": " << util::jsonNumber(mi.ciHigh)
       << ", \"leak_detected\": "
       << (mi.leakDetected() ? "true" : "false")
       << ", \"mean_visible_local\": "
       << util::jsonNumber(meanVisibleLocal)
       << ", \"mean_visible_scatter\": "
       << util::jsonNumber(meanVisibleScatter) << "}";
    return os.str();
}

LeakReport
measureLocalityLeakWith(const std::string &design_name,
                        std::uint64_t capacity_blocks,
                        const PlbLeakOptions &opts,
                        const std::function<void(Addr)> &access,
                        const std::function<std::uint64_t()> &visibleCount)
{
    SD_ASSERT(capacity_blocks > opts.localityWindow);
    SD_ASSERT(opts.phaseLen >= 1);

    Rng rng(opts.seed * 0x9e3779b9u + 17);
    std::vector<unsigned> phase_label;
    std::vector<unsigned> visible;
    phase_label.reserve(opts.requests);
    visible.reserve(opts.requests);

    bool scatter = false;
    Addr window_base = 0;
    double sum_local = 0.0;
    double sum_scatter = 0.0;
    std::size_t n_local = 0;
    std::size_t n_scatter = 0;

    std::uint64_t seen = visibleCount();
    for (std::size_t i = 0; i < opts.requests; ++i) {
        if (i % opts.phaseLen == 0) {
            // The secret: does this phase stay local or scatter?
            scatter = rng.nextBool(0.5);
            window_base =
                rng.nextBelow(capacity_blocks - opts.localityWindow);
        }
        const Addr addr = scatter
                              ? rng.nextBelow(capacity_blocks)
                              : window_base +
                                    rng.nextBelow(opts.localityWindow);
        access(addr);
        const std::uint64_t now = visibleCount();
        const auto delta = static_cast<unsigned>(now - seen);
        seen = now;
        phase_label.push_back(scatter ? 1u : 0u);
        visible.push_back(delta);
        if (scatter) {
            sum_scatter += delta;
            ++n_scatter;
        } else {
            sum_local += delta;
            ++n_local;
        }
    }

    LeakReport report;
    report.design = design_name;
    report.requests = opts.requests;
    report.meanVisibleLocal =
        n_local ? sum_local / static_cast<double>(n_local) : 0.0;
    report.meanVisibleScatter =
        n_scatter ? sum_scatter / static_cast<double>(n_scatter) : 0.0;
    MiOptions mi = opts.mi;
    mi.seed = mi.seed * 31 + opts.seed;
    report.mi = estimateMutualInformation(phase_label, visible, mi);
    return report;
}

LeakReport
measurePlbLocalityLeak(LeakDesign design, const PlbLeakOptions &opts)
{
    oram::OramParams params;
    params.levels = opts.dataLevels;
    params.stashCapacity = 200;

    ChannelObserver obs;
    switch (design) {
      case LeakDesign::PathOram: {
        oram::PathOram o(params, crypto::makeKey(0x1ea4, opts.seed),
                         crypto::makeKey(0xbeef, opts.seed * 3 + 1),
                         opts.seed);
        obs.attach(o.store());
        return measureLocalityLeakWith(
            leakDesignName(design), o.params().capacityBlocks(), opts,
            [&](Addr a) { o.access(a, oram::OramOp::Read, nullptr); },
            [&] { return obs.events().size(); });
      }
      case LeakDesign::Freecursive: {
        oram::RecursiveOram::Params rp;
        rp.data = params;
        rp.plbEntries = opts.plbEntries;
        oram::RecursiveOram o(rp, opts.seed);
        for (unsigned t = 0; t <= o.posmapLevels(); ++t)
            obs.attach(o.tree(t).store());
        return measureLocalityLeakWith(
            leakDesignName(design), o.capacityBlocks(), opts,
            [&](Addr a) { o.access(a, oram::OramOp::Read, nullptr); },
            [&] { return obs.events().size(); });
      }
    }
    panic("measurePlbLocalityLeak: unknown design");
}

/* ------------------------------------------------------------------ */
/* Deliberately-leaky positive controls                                */
/* ------------------------------------------------------------------ */

std::vector<TraceEvent>
injectOrderingLeak(std::vector<TraceEvent> events, std::size_t window)
{
    SD_ASSERT(window >= 2);
    struct Payload
    {
        TraceEventKind kind;
        std::uint64_t addr;
    };
    std::vector<Payload> buf;
    for (std::size_t w = 0; w < events.size(); w += window) {
        const std::size_t end = std::min(w + window, events.size());
        buf.clear();
        for (std::size_t i = w; i < end; ++i)
            buf.push_back(Payload{events[i].kind, events[i].addr});
        std::sort(buf.begin(), buf.end(),
                  [](const Payload &p, const Payload &q) {
                      if (p.addr != q.addr)
                          return p.addr < q.addr;
                      return static_cast<int>(p.kind) <
                             static_cast<int>(q.kind);
                  });
        for (std::size_t i = w; i < end; ++i) {
            events[i].kind = buf[i - w].kind;
            events[i].addr = buf[i - w].addr;
            // events[i].at stays: the slots keep their timestamps.
        }
    }
    return events;
}

std::vector<TraceEvent>
injectTimingLeak(std::vector<TraceEvent> events, std::uint64_t hot_lo,
                 std::uint64_t hot_hi, Tick extra_ticks)
{
    Tick carry = 0;
    for (TraceEvent &e : events) {
        e.at += carry;
        if (e.addr >= hot_lo && e.addr < hot_hi)
            carry += extra_ticks; // Slows everything downstream.
    }
    return events;
}

/* ------------------------------------------------------------------ */
/* Concurrency-sound checking                                          */
/* ------------------------------------------------------------------ */

std::vector<TraceEvent>
scheduleToTrace(const std::vector<ScheduleEvent> &schedule)
{
    std::vector<TraceEvent> t;
    t.reserve(schedule.size());
    for (const ScheduleEvent &e : schedule) {
        t.push_back(TraceEvent{e.write ? TraceEventKind::Write
                                       : TraceEventKind::Read,
                               e.shard, e.seq});
    }
    return t;
}

std::string
ScheduleComparison::summary() const
{
    std::ostringstream os;
    os << (pass ? "SCHEDULE-PASS" : "SCHEDULE-FAIL") << " ["
       << marginal.summary() << "] [" << ordering.summary()
       << "] [SHARD-KIND-" << (perShardPass ? "PASS" : "FAIL")
       << ": max_delta=" << maxPerShardKindDelta << "@shard"
       << worstShard << " band=" << perShardBand << "]";
    return os.str();
}

namespace
{

/** Per-shard 0/1 write-indicator subsequences of a schedule. */
std::vector<std::vector<double>>
perShardKindSeries(const std::vector<ScheduleEvent> &schedule,
                   unsigned shards)
{
    std::vector<std::vector<double>> series(shards);
    for (const ScheduleEvent &e : schedule) {
        if (e.shard < shards)
            series[e.shard].push_back(e.write ? 1.0 : 0.0);
    }
    return series;
}

} // namespace

ScheduleComparison
compareSchedules(const std::vector<ScheduleEvent> &a,
                 const std::vector<ScheduleEvent> &b,
                 const DeepCheckOptions &opts)
{
    ScheduleComparison cmp;
    const std::vector<TraceEvent> ta = scheduleToTrace(a);
    const std::vector<TraceEvent> tb = scheduleToTrace(b);
    cmp.marginal = compareTraces(ta, tb, opts.marginal);
    cmp.ordering = compareAutocorrelation(ta, tb, opts.timing);

    // Shard-local ordering: compare the ACF profile of each shard's
    // FIFO-order write-indicator sequence between the two runs.
    unsigned shards = 0;
    for (const ScheduleEvent &e : a)
        shards = std::max(shards, e.shard + 1);
    for (const ScheduleEvent &e : b)
        shards = std::max(shards, e.shard + 1);
    const auto sa = perShardKindSeries(a, shards);
    const auto sb = perShardKindSeries(b, shards);
    cmp.perShardPass = true;
    for (unsigned s = 0; s < shards; ++s) {
        const std::size_t na = sa[s].size();
        const std::size_t nb = sb[s].size();
        if (na < 2 || nb < 2)
            continue; // The marginal check owns occupancy mismatches.
        const double band =
            std::max(opts.timing.acfBandFloor,
                     opts.timing.acfBandScale *
                         std::sqrt(1.0 / static_cast<double>(na) +
                                   1.0 / static_cast<double>(nb)));
        for (unsigned lag = 1; lag <= opts.timing.maxLag; ++lag) {
            const double delta =
                std::abs(lagAutocorrelation(sa[s], lag) -
                         lagAutocorrelation(sb[s], lag));
            if (delta > cmp.maxPerShardKindDelta) {
                cmp.maxPerShardKindDelta = delta;
                cmp.worstShard = s;
                cmp.perShardBand = band;
            }
            if (delta > band)
                cmp.perShardPass = false;
        }
        if (cmp.perShardBand == 0.0)
            cmp.perShardBand = band;
    }
    cmp.pass = cmp.marginal.indistinguishable && cmp.ordering.pass &&
               cmp.perShardPass;
    return cmp;
}

} // namespace secdimm::verify
