/**
 * @file
 * The unit of work handed to a DRAM channel: one 64-byte read or write
 * burst, already decoded to DRAM coordinates.
 */

#ifndef SECUREDIMM_DRAM_REQUEST_HH
#define SECUREDIMM_DRAM_REQUEST_HH

#include <cstdint>

#include "util/types.hh"

namespace secdimm::dram
{

/** Decoded DRAM coordinates of a block within one channel. */
struct DramCoord
{
    unsigned rank = 0;
    unsigned bank = 0;
    unsigned row = 0;
    unsigned col = 0;  ///< Block index within the row.
};

/** One 64-byte DRAM access (a full burst). */
struct DramRequest
{
    std::uint64_t id = 0;      ///< Caller-assigned tag.
    Addr addr = 0;             ///< Channel-local block address.
    DramCoord coord;           ///< Decoded coordinates.
    bool write = false;
    Tick enqueuedAt = 0;
};

/** Completion record delivered through the channel callback. */
struct DramCompletion
{
    std::uint64_t id = 0;
    bool write = false;
    Tick enqueuedAt = 0;
    Tick doneAt = 0;
};

} // namespace secdimm::dram

#endif // SECUREDIMM_DRAM_REQUEST_HH
