#include "dram/timing.hh"

namespace secdimm::dram
{

TimingParams
ddr3_1600()
{
    return TimingParams{};
}

TimingParams
ddr4_2400()
{
    TimingParams p;
    p.tckNs = 0.833;
    p.cl = 17;
    p.cwl = 12;
    p.tRCD = 17;
    p.tRP = 17;
    p.tRAS = 39;
    p.tRC = 56;
    p.tBURST = 4;
    p.tCCD = 6;   // tCCD_L.
    p.tRRD = 6;   // tRRD_L.
    p.tFAW = 26;
    p.tWTR = 9;
    p.tRTP = 9;
    p.tWR = 18;
    p.tRTRS = 3;
    p.tREFI = 9363;
    p.tRFC = 421; // 8 Gb device.
    p.tXP = 8;
    p.tXPDLL = 29;
    return p;
}

TimingParams
ddr3_1066()
{
    TimingParams p;
    p.tckNs = 1.875;
    p.cl = 8;
    p.cwl = 6;
    p.tRCD = 8;
    p.tRP = 8;
    p.tRAS = 20;
    p.tRC = 28;
    p.tCCD = 4;
    p.tRRD = 4;
    p.tFAW = 20;
    p.tWTR = 4;
    p.tRTP = 4;
    p.tWR = 8;
    p.tREFI = 4160;
    p.tRFC = 86;
    p.tXPDLL = 13;
    return p;
}

} // namespace secdimm::dram
