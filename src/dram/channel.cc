#include "dram/channel.hh"

#include <algorithm>

#include "fault/fault_injector.hh"
#include "util/logging.hh"

namespace secdimm::dram
{

DramChannel::DramChannel(std::string name, const TimingParams &timing,
                         const Geometry &geom, MapPolicy map_policy,
                         SchedPolicy sched_policy)
    : name_(std::move(name)),
      timing_(timing),
      geom_(geom),
      map_(geom, map_policy),
      schedPolicy_(sched_policy),
      banks_(static_cast<std::size_t>(geom.ranksPerChannel) *
             geom.banksPerRank),
      ranks_(geom.ranksPerChannel),
      rankLastActivity_(geom.ranksPerChannel, 0)
{
    // Stagger refresh deadlines across ranks so they do not all block
    // the channel at once (standard controller practice).
    for (unsigned r = 0; r < geom.ranksPerChannel; ++r) {
        ranks_[r].nextRefreshAt =
            timing_.tREFI * (r + 1) / geom.ranksPerChannel;
    }
}

BankState &
DramChannel::bank(const DramCoord &c)
{
    return banks_[static_cast<std::size_t>(c.rank) * geom_.banksPerRank +
                  c.bank];
}

bool
DramChannel::canEnqueue(bool write) const
{
    if (write)
        return writeQ_.size() < drainPolicy_.queueCapacity;
    return readQ_.size() < drainPolicy_.queueCapacity;
}

void
DramChannel::enqueue(std::uint64_t id, Addr block_index, bool write,
                     Tick at)
{
    Entry e;
    e.req.id = id;
    e.req.addr = block_index;
    e.req.coord = map_.decode(block_index);
    e.req.write = write;
    e.req.enqueuedAt = at;

    // Wake the target rank immediately so the tXPDLL exit latency
    // overlaps with queueing delay (Section III-E: "turn on the rank
    // required for the next request early enough").
    RankState &rs = rank(e.req.coord.rank);
    if (rs.powerState == RankPowerState::PowerDown)
        wakeRank(e.req.coord.rank, std::max(at, curTick_));

    if (write)
        writeQ_.push_back(e);
    else
        readQ_.push_back(e);
}

bool
DramChannel::drainingWrites() const
{
    return writeDrainMode_ || readQ_.empty();
}

DramChannel::NextAction
DramChannel::nextAction(const Entry &e) const
{
    const DramCoord &c = e.req.coord;
    const BankState &b =
        banks_[static_cast<std::size_t>(c.rank) * geom_.banksPerRank +
               c.bank];
    const RankState &r = ranks_[c.rank];

    NextAction a;
    const Tick arrival = std::max(e.req.enqueuedAt, curTick_);
    const Tick rank_ready =
        std::max({arrival, r.refreshDoneAt, r.powerUpAt});

    if (b.openRow == static_cast<int>(c.row)) {
        a.kind = NextAction::Kind::Cas;
        a.rowHit = true;
        a.at = std::max(rank_ready, earliestCas(e));
    } else if (!b.rowOpen()) {
        a.kind = NextAction::Kind::Act;
        Tick t = std::max(rank_ready, b.actAllowedAt);
        if (r.anyActIssued)
            t = std::max(t, r.lastActAt + timing_.tRRD);
        t = std::max(t, r.fawAllowedAt(timing_.tFAW));
        a.at = t;
    } else {
        a.kind = NextAction::Kind::Pre;
        a.at = std::max(rank_ready, b.preAllowedAt);
    }
    return a;
}

Tick
DramChannel::earliestCas(const Entry &e) const
{
    const DramCoord &c = e.req.coord;
    const BankState &b =
        banks_[static_cast<std::size_t>(c.rank) * geom_.banksPerRank +
               c.bank];
    const RankState &r = ranks_[c.rank];

    Tick t = std::max(curTick_, b.casAllowedAt);
    t = std::max(t, e.req.enqueuedAt);

    const Cycles cas_to_data = e.req.write ? timing_.cwl : timing_.cl;

    // Write-to-read turnaround within the rank.
    if (!e.req.write)
        t = std::max(t, r.wrToRdAt);

    // Data-bus availability, plus tRTRS when the bus changes owner
    // rank or direction.
    const bool switch_penalty =
        lastBurstRank_ >= 0 &&
        (lastBurstRank_ != static_cast<int>(c.rank) ||
         lastBurstWasWrite_ != e.req.write);
    Tick bus_free = dataBusFreeAt_;
    if (switch_penalty)
        bus_free += timing_.tRTRS;
    if (bus_free > cas_to_data && t + cas_to_data < bus_free)
        t = bus_free - cas_to_data;

    return t;
}

int
DramChannel::pick(const std::vector<Entry> &q, Tick horizon,
                  Tick &best_at) const
{
    // Only the oldest request per bank may issue PRE/ACT, preventing
    // row thrash between same-bank requests.  Commands then issue in
    // ready-time order (this makes the event-driven loop equivalent to
    // a per-cycle scheduler); among commands ready at the same instant
    // FR-FCFS prefers row-hit CAS commands, then the oldest request.
    std::vector<int> oldest_for_bank(banks_.size(), -1);
    for (std::size_t i = 0; i < q.size(); ++i) {
        const DramCoord &c = q[i].req.coord;
        const std::size_t bidx =
            static_cast<std::size_t>(c.rank) * geom_.banksPerRank +
            c.bank;
        if (oldest_for_bank[bidx] < 0)
            oldest_for_bank[bidx] = static_cast<int>(i);
    }

    // Strict FCFS serves requests in arrival order: only the head of
    // the queue is a candidate.
    const std::size_t limit =
        schedPolicy_ == SchedPolicy::Fcfs && !q.empty() ? 1 : q.size();

    int best = -1;
    Tick soonest = tickNever;
    bool best_is_hit = false;
    for (std::size_t i = 0; i < limit; ++i) {
        const NextAction a = nextAction(q[i]);
        const DramCoord &c = q[i].req.coord;
        const std::size_t bidx =
            static_cast<std::size_t>(c.rank) * geom_.banksPerRank +
            c.bank;
        const bool may_prep =
            oldest_for_bank[bidx] == static_cast<int>(i);
        if (a.kind != NextAction::Kind::Cas && !may_prep)
            continue;

        const bool is_hit = schedPolicy_ == SchedPolicy::FrFcfs &&
                            a.kind == NextAction::Kind::Cas && a.rowHit;
        const bool better =
            a.at < soonest || (a.at == soonest && is_hit && !best_is_hit);
        if (better) {
            soonest = a.at;
            best = static_cast<int>(i);
            best_is_hit = is_hit;
        }
    }

    best_at = soonest;
    if (best >= 0 && soonest > horizon)
        return -1;
    return best;
}

void
DramChannel::issuePre(Entry &e, Tick t)
{
    BankState &b = bank(e.req.coord);
    RankState &r = rank(e.req.coord.rank);
    SD_ASSERT(b.rowOpen());
    b.openRow = noOpenRow;
    b.actAllowedAt = std::max(b.actAllowedAt, t + timing_.tRP);
    SD_ASSERT(r.openBanks > 0);
    --r.openBanks;
    if (r.openBanks == 0)
        r.setPowerState(RankPowerState::PrechargeStandby, t);
    e.actIssuedForUs = true;
    ++stats_.precharges;
}

void
DramChannel::issueAct(Entry &e, Tick t)
{
    BankState &b = bank(e.req.coord);
    RankState &r = rank(e.req.coord.rank);
    SD_ASSERT(!b.rowOpen());
    b.openRow = static_cast<int>(e.req.coord.row);
    b.casAllowedAt = t + timing_.tRCD;
    b.preAllowedAt = std::max(b.preAllowedAt, t + timing_.tRAS);
    b.actAllowedAt = t + timing_.tRC;
    r.recordAct(t);
    ++r.openBanks;
    if (r.powerState != RankPowerState::ActiveStandby)
        r.setPowerState(RankPowerState::ActiveStandby, t);
    e.actIssuedForUs = true;
    ++stats_.activates;
}

void
DramChannel::issueCas(std::vector<Entry> &q, std::size_t idx, Tick t)
{
    Entry &e = q[idx];
    BankState &b = bank(e.req.coord);
    RankState &r = rank(e.req.coord.rank);
    const bool write = e.req.write;
    const Cycles cas_to_data = write ? timing_.cwl : timing_.cl;
    const Tick data_start = t + cas_to_data;
    const Tick data_end = data_start + timing_.tBURST;

    /*
     * Modeled ECC/MAC burst error on reads: the burst still occupies
     * the bus and pays every timing fence below, but the request is
     * left queued so the CAS re-issues (earliestCas() keys off
     * dataBusFreeAt_, so the retry lands after this burst drains).
     * Past the retry budget the burst completes anyway -- the
     * functional layer's MAC is the backstop.
     */
    bool retry_read = false;
    if (!write && injector_) {
        if (injector_->rollDramBitFlip()) {
            injector_->recordDetected(fault::FaultKind::DramBitFlip);
            if (e.eccRetries < injector_->maxRetries()) {
                ++e.eccRetries;
                retry_read = true;
            } else {
                injector_->recordUnrecovered(fault::FaultKind::DramBitFlip,
                                             "dram.cas", e.eccRetries);
            }
        } else if (e.eccRetries > 0) {
            injector_->recordRecovered(fault::FaultKind::DramBitFlip,
                                       "dram.cas", e.eccRetries);
        }
    }

    if (lastBurstRank_ >= 0 &&
        lastBurstRank_ != static_cast<int>(e.req.coord.rank)) {
        ++stats_.rankSwitches;
    }

    dataBusFreeAt_ = data_end;
    lastBurstRank_ = static_cast<int>(e.req.coord.rank);
    lastBurstWasWrite_ = write;

    if (write) {
        r.wrToRdAt = std::max(r.wrToRdAt, data_end + timing_.tWTR);
        b.preAllowedAt = std::max(b.preAllowedAt, data_end + timing_.tWR);
        ++stats_.writes;
    } else {
        b.preAllowedAt = std::max(b.preAllowedAt, t + timing_.tRTP);
        ++stats_.reads;
        if (!retry_read) {
            stats_.readLatencySum +=
                static_cast<double>(data_end - e.req.enqueuedAt);
            ++stats_.readLatencyCount;
        }
    }

    if (e.actIssuedForUs)
        ++stats_.rowMisses;
    else
        ++stats_.rowHits;

    rankLastActivity_[e.req.coord.rank] = data_end;

    if (onCas_)
        onCas_(e.req, data_end);

    if (retry_read)
        return;

    if (onComplete_) {
        DramCompletion done;
        done.id = e.req.id;
        done.write = write;
        done.enqueuedAt = e.req.enqueuedAt;
        done.doneAt = data_end;
        onComplete_(done);
    }
    q.erase(q.begin() + static_cast<std::ptrdiff_t>(idx));
}

void
DramChannel::applyDueRefreshes(Tick now)
{
    for (unsigned ri = 0; ri < ranks_.size(); ++ri) {
        RankState &r = ranks_[ri];
        while (r.nextRefreshAt <= now) {
            // Wake the rank if needed, close all banks, refresh.
            Tick start = std::max(r.nextRefreshAt, r.refreshDoneAt);
            start = std::max(start, r.powerUpAt);
            if (r.powerState == RankPowerState::PowerDown) {
                r.setPowerState(RankPowerState::PrechargeStandby, start);
                start += timing_.tXPDLL;
                ++stats_.powerUps;
            }
            for (unsigned bi = 0; bi < geom_.banksPerRank; ++bi) {
                BankState &b =
                    banks_[static_cast<std::size_t>(ri) *
                               geom_.banksPerRank +
                           bi];
                if (b.rowOpen()) {
                    start = std::max(start, b.preAllowedAt);
                    b.openRow = noOpenRow;
                    SD_ASSERT(r.openBanks > 0);
                    --r.openBanks;
                    ++stats_.precharges;
                }
            }
            if (r.openBanks == 0 &&
                r.powerState == RankPowerState::ActiveStandby) {
                r.setPowerState(RankPowerState::PrechargeStandby, start);
            }
            start += timing_.tRP;
            r.refreshDoneAt = start + timing_.tRFC;
            for (unsigned bi = 0; bi < geom_.banksPerRank; ++bi) {
                BankState &b =
                    banks_[static_cast<std::size_t>(ri) *
                               geom_.banksPerRank +
                           bi];
                b.actAllowedAt =
                    std::max(b.actAllowedAt, r.refreshDoneAt);
            }
            r.nextRefreshAt += timing_.tREFI;
            ++stats_.refreshes;
        }
    }
}

bool
DramChannel::rankHasQueuedWork(unsigned r) const
{
    auto targets = [r](const Entry &e) {
        return e.req.coord.rank == r;
    };
    return std::any_of(readQ_.begin(), readQ_.end(), targets) ||
           std::any_of(writeQ_.begin(), writeQ_.end(), targets);
}

void
DramChannel::applyIdlePowerDown(Tick now)
{
    if (idlePowerDownThreshold_ == 0)
        return;
    for (unsigned ri = 0; ri < ranks_.size(); ++ri) {
        RankState &r = ranks_[ri];
        if (r.powerState == RankPowerState::PowerDown)
            continue;
        Tick enter_at = rankLastActivity_[ri] + idlePowerDownThreshold_;
        if (enter_at > now || rankHasQueuedWork(ri))
            continue;
        // Close any pages left open by the open-page policy; only a
        // fully-precharged rank can enter power-down.
        if (r.openBanks != 0) {
            for (unsigned bi = 0; bi < geom_.banksPerRank; ++bi) {
                BankState &b =
                    banks_[static_cast<std::size_t>(ri) *
                               geom_.banksPerRank +
                           bi];
                if (!b.rowOpen())
                    continue;
                const Tick pre_at = std::max(enter_at, b.preAllowedAt);
                if (pre_at > now)
                    continue; // Try again on a later pass.
                b.openRow = noOpenRow;
                b.actAllowedAt =
                    std::max(b.actAllowedAt, pre_at + timing_.tRP);
                SD_ASSERT(r.openBanks > 0);
                --r.openBanks;
                ++stats_.precharges;
                enter_at = std::max(enter_at, pre_at + timing_.tRP);
            }
            if (r.openBanks == 0)
                r.setPowerState(RankPowerState::PrechargeStandby,
                                std::min(enter_at, now));
        }
        if (r.openBanks == 0 &&
            r.powerState == RankPowerState::PrechargeStandby) {
            powerDownRank(ri, std::max(enter_at, r.lastStateChange));
        }
    }
}

void
DramChannel::powerDownRank(unsigned rank_idx, Tick now)
{
    RankState &r = ranks_[rank_idx];
    if (r.powerState == RankPowerState::PowerDown)
        return;
    if (r.openBanks != 0)
        return; // Only precharge power-down is modeled.
    if (now < r.refreshDoneAt)
        return;
    r.setPowerState(RankPowerState::PowerDown, now);
    ++stats_.powerDownEntries;
}

void
DramChannel::wakeRank(unsigned rank_idx, Tick now)
{
    RankState &r = ranks_[rank_idx];
    if (r.powerState != RankPowerState::PowerDown)
        return;
    // Honor minimum residency, then pay the slow (DLL-off) exit that
    // matches the paper's quoted 24 ns wake-up.
    const Tick exit_start =
        std::max(now, r.lastStateChange + timing_.tCKE);
    r.setPowerState(RankPowerState::PrechargeStandby, exit_start);
    r.powerUpAt = std::max(r.powerUpAt, exit_start + timing_.tXPDLL);
    ++stats_.powerUps;
}

void
DramChannel::setIdlePowerDown(Cycles idle_threshold)
{
    idlePowerDownThreshold_ = idle_threshold;
}

Tick
DramChannel::nextEventAt() const
{
    Tick best = tickNever;
    if (drainingWrites()) {
        Tick at = tickNever;
        if (pick(writeQ_, tickNever, at) >= 0 || at != tickNever)
            best = std::min(best, at);
        if (!readQ_.empty()) {
            Tick rat = tickNever;
            if (pick(readQ_, tickNever, rat) >= 0 || rat != tickNever)
                best = std::min(best, rat);
        }
    } else {
        Tick at = tickNever;
        if (pick(readQ_, tickNever, at) >= 0 || at != tickNever)
            best = std::min(best, at);
        if (!writeQ_.empty()) {
            Tick wat = tickNever;
            if (pick(writeQ_, tickNever, wat) >= 0 || wat != tickNever)
                best = std::min(best, wat);
        }
    }
    return best;
}

void
DramChannel::advanceTo(Tick now)
{
    // Advancing to "never" would spin the refresh catch-up forever;
    // it always indicates a driver bug (advanceTo(nextEventAt()) with
    // no pending work).
    SD_ASSERT(now != tickNever);
    applyDueRefreshes(now);

    for (;;) {
        // Update drain-mode hysteresis.
        if (writeQ_.size() > drainPolicy_.highWatermark)
            writeDrainMode_ = true;
        else if (writeQ_.size() < drainPolicy_.lowWatermark)
            writeDrainMode_ = false;

        std::vector<Entry> *primary = &readQ_;
        std::vector<Entry> *secondary = &writeQ_;
        if (drainingWrites()) {
            primary = &writeQ_;
            secondary = &readQ_;
        }

        Tick at = tickNever;
        int idx = pick(*primary, now, at);
        std::vector<Entry> *chosen_q = primary;

        if (idx < 0) {
            // Opportunistically service the other queue.
            Tick at2 = tickNever;
            const int idx2 = pick(*secondary, now, at2);
            if (idx2 >= 0) {
                idx = idx2;
                at = at2;
                chosen_q = secondary;
            }
        }

        if (idx < 0)
            break;

        SD_ASSERT(at >= curTick_ || curTick_ == 0);
        curTick_ = std::max(curTick_, at);

        Entry &e = (*chosen_q)[static_cast<std::size_t>(idx)];
        const NextAction a = nextAction(e);
        switch (a.kind) {
          case NextAction::Kind::Pre:
            issuePre(e, at);
            break;
          case NextAction::Kind::Act:
            issueAct(e, at);
            break;
          case NextAction::Kind::Cas:
            issueCas(*chosen_q, static_cast<std::size_t>(idx), at);
            break;
        }

        applyDueRefreshes(now);
    }

    curTick_ = std::max(curTick_, now);
    applyIdlePowerDown(now);
}

Tick
DramChannel::drain()
{
    while (!idle()) {
        const Tick next = nextEventAt();
        SD_ASSERT(next != tickNever);
        advanceTo(next);
    }
    return std::max(curTick_, dataBusFreeAt_);
}

void
DramChannel::finalizeStats(Tick end)
{
    for (auto &r : ranks_)
        r.accountTo(end);
    curTick_ = std::max(curTick_, end);
}

void
DramChannel::exportMetrics(util::MetricsRegistry &m,
                           const std::string &prefix) const
{
    m.setCounter(prefix + ".activates", stats_.activates);
    m.setCounter(prefix + ".precharges", stats_.precharges);
    m.setCounter(prefix + ".reads", stats_.reads);
    m.setCounter(prefix + ".writes", stats_.writes);
    m.setCounter(prefix + ".row_hits", stats_.rowHits);
    m.setCounter(prefix + ".row_misses", stats_.rowMisses);
    m.setCounter(prefix + ".refreshes", stats_.refreshes);
    m.setCounter(prefix + ".power_down_entries",
                 stats_.powerDownEntries);
    m.setCounter(prefix + ".power_ups", stats_.powerUps);
    m.setCounter(prefix + ".rank_switches", stats_.rankSwitches);
    m.setGauge(prefix + ".avg_read_latency", stats_.avgReadLatency());
    const std::uint64_t cas = stats_.rowHits + stats_.rowMisses;
    m.setGauge(prefix + ".row_hit_rate",
               cas ? static_cast<double>(stats_.rowHits) / cas : 0.0);

    std::uint64_t active = 0, standby = 0, down = 0;
    for (const auto &r : ranks_) {
        active += r.cyclesActiveStandby;
        standby += r.cyclesPrechargeStandby;
        down += r.cyclesPowerDown;
    }
    m.setCounter(prefix + ".cycles_active_standby", active);
    m.setCounter(prefix + ".cycles_precharge_standby", standby);
    m.setCounter(prefix + ".cycles_power_down", down);
    const std::uint64_t total = active + standby + down;
    m.setGauge(prefix + ".power_down_residency",
               total ? static_cast<double>(down) / total : 0.0);
}

} // namespace secdimm::dram
