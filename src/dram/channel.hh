/**
 * @file
 * Event-driven timing model of one DDR channel: per-bank row state,
 * per-rank activation/turnaround/refresh/power fences, a shared data
 * bus, and an FR-FCFS scheduler with write-drain hysteresis.
 *
 * The model is behaviour-equivalent to a per-cycle USIMM-style loop for
 * the constraints it enforces, but advances directly between command
 * issue instants so large ORAM path sweeps simulate quickly.
 */

#ifndef SECUREDIMM_DRAM_CHANNEL_HH
#define SECUREDIMM_DRAM_CHANNEL_HH

#include <functional>
#include <string>
#include <vector>

#include "dram/address_map.hh"
#include "dram/bank.hh"
#include "dram/rank.hh"
#include "dram/request.hh"
#include "dram/scheduler.hh"
#include "dram/timing.hh"
#include "util/metrics.hh"

namespace secdimm::fault
{
class FaultInjector;
}

namespace secdimm::dram
{

/** Aggregate activity counters consumed by the power model. */
struct ChannelStats
{
    std::uint64_t activates = 0;
    std::uint64_t precharges = 0;
    std::uint64_t reads = 0;
    std::uint64_t writes = 0;
    std::uint64_t rowHits = 0;
    std::uint64_t rowMisses = 0;
    std::uint64_t refreshes = 0;
    std::uint64_t powerDownEntries = 0;
    std::uint64_t powerUps = 0;
    std::uint64_t rankSwitches = 0;  ///< Bursts paying tRTRS.

    double readLatencySum = 0.0;     ///< Enqueue-to-data, cycles.
    std::uint64_t readLatencyCount = 0;

    double
    avgReadLatency() const
    {
        return readLatencyCount ? readLatencySum / readLatencyCount : 0.0;
    }
};

/**
 * One DDR channel with its DIMM ranks.  Requests arrive with a
 * timestamp (which may be in the future); completions are delivered
 * through a callback carrying the finish tick.
 */
class DramChannel
{
  public:
    using CompletionFn = std::function<void(const DramCompletion &)>;

    /**
     * Fired once per issued CAS with the request and its data-burst
     * completion tick: the externally visible (command, address, time)
     * tuple an adversary probing this channel observes.  Used by the
     * verify::ChannelObserver trace checker.
     */
    using CasObserverFn =
        std::function<void(const DramRequest &, Tick data_end)>;

    DramChannel(std::string name, const TimingParams &timing,
                const Geometry &geom, MapPolicy map_policy,
                SchedPolicy sched_policy = SchedPolicy::FrFcfs);

    /** Register the single completion consumer. */
    void setCompletionCallback(CompletionFn fn) { onComplete_ = std::move(fn); }

    /** Register the (single) bus-trace observer; empty fn detaches. */
    void setCasObserver(CasObserverFn fn) { onCas_ = std::move(fn); }

    /**
     * Arm read-burst fault injection (nullptr disarms).  A rolled bit
     * flip on a read CAS models an ECC/MAC-detected burst error: the
     * burst occupies the bus and pays full timing, but the request
     * stays queued and the CAS is re-issued (bounded by the plan's
     * retry budget) instead of completing.  Not owned.
     */
    void setFaultInjector(fault::FaultInjector *inj) { injector_ = inj; }

    /** True if a new request of the given kind fits in its queue. */
    bool canEnqueue(bool write) const;

    /**
     * Queue one 64-byte access to channel-local block @p block_index,
     * becoming visible to the scheduler at @p at.
     */
    void enqueue(std::uint64_t id, Addr block_index, bool write, Tick at);

    /**
     * Earliest tick at which the channel could issue its next command
     * (tickNever when fully idle).
     */
    Tick nextEventAt() const;

    /** Issue every command legal at or before @p now. */
    void advanceTo(Tick now);

    /** Run until all queued requests have issued; returns final tick. */
    Tick drain();

    bool idle() const { return readQ_.empty() && writeQ_.empty(); }
    std::size_t readQueueSize() const { return readQ_.size(); }
    std::size_t writeQueueSize() const { return writeQ_.size(); }

    /** Explicit power control for the SDIMM low-power policy. */
    void powerDownRank(unsigned rank, Tick now);
    void wakeRank(unsigned rank, Tick now);

    /** Enable idle-timeout power-down (0 disables). */
    void setIdlePowerDown(Cycles idle_threshold);

    /** Close accounting at end of simulation. */
    void finalizeStats(Tick end);

    /**
     * Export this channel's counters into @p m under @p prefix
     * (row hits/misses, command counts, power-state residency; see
     * docs/METRICS.md "dram.*").  Call after finalizeStats().
     */
    void exportMetrics(util::MetricsRegistry &m,
                       const std::string &prefix) const;

    const ChannelStats &stats() const { return stats_; }
    const std::vector<RankState> &rankStates() const { return ranks_; }
    const TimingParams &timing() const { return timing_; }
    const Geometry &geometry() const { return geom_; }
    const AddressMap &addressMap() const { return map_; }
    const std::string &name() const { return name_; }
    Tick curTick() const { return curTick_; }

  private:
    /** Scheduler-internal view of one queued request. */
    struct Entry
    {
        DramRequest req;
        bool actIssuedForUs = false;
        unsigned eccRetries = 0; ///< Re-issued CAS count (faults).
    };

    /** Which command a request needs next, with its earliest tick. */
    struct NextAction
    {
        enum class Kind { Pre, Act, Cas } kind = Kind::Cas;
        Tick at = 0;
        bool rowHit = false;
    };

    BankState &bank(const DramCoord &c);
    RankState &rank(unsigned r) { return ranks_[r]; }

    NextAction nextAction(const Entry &e) const;
    Tick earliestCas(const Entry &e) const;

    /** Pick a request (index into queue) per policy; -1 if none. */
    int pick(const std::vector<Entry> &q, Tick horizon,
             Tick &best_at) const;

    void issuePre(Entry &e, Tick t);
    void issueAct(Entry &e, Tick t);
    void issueCas(std::vector<Entry> &q, std::size_t idx, Tick t);

    void applyDueRefreshes(Tick now);
    void applyIdlePowerDown(Tick now);
    bool rankHasQueuedWork(unsigned r) const;

    bool drainingWrites() const;

    std::string name_;
    TimingParams timing_;
    Geometry geom_;
    AddressMap map_;
    SchedPolicy schedPolicy_;
    WriteDrainPolicy drainPolicy_;

    std::vector<BankState> banks_;  ///< [rank * banksPerRank + bank].
    std::vector<RankState> ranks_;
    std::vector<Tick> rankLastActivity_;

    std::vector<Entry> readQ_;
    std::vector<Entry> writeQ_;
    bool writeDrainMode_ = false;

    Tick curTick_ = 0;
    Tick dataBusFreeAt_ = 0;
    int lastBurstRank_ = -1;
    bool lastBurstWasWrite_ = false;

    Cycles idlePowerDownThreshold_ = 0;

    ChannelStats stats_;
    CompletionFn onComplete_;
    CasObserverFn onCas_;
    fault::FaultInjector *injector_ = nullptr;
};

} // namespace secdimm::dram

#endif // SECUREDIMM_DRAM_CHANNEL_HH
