/**
 * @file
 * DDR timing parameters and memory geometry for the DRAM timing model.
 * Defaults follow a DDR3-1600 x8 device (Micron MT41J256M8 class, the
 * device in the paper's Table II), expressed in memory-controller
 * clock cycles (800 MHz clock, 1.25 ns tCK, 1600 MT/s data rate).
 */

#ifndef SECUREDIMM_DRAM_TIMING_HH
#define SECUREDIMM_DRAM_TIMING_HH

#include <cstdint>

#include "util/types.hh"

namespace secdimm::dram
{

/** All DDR protocol timing constraints, in memory clock cycles. */
struct TimingParams
{
    double tckNs = 1.25;      ///< Clock period in ns (DDR3-1600).

    Cycles cl = 11;           ///< CAS latency (read).
    Cycles cwl = 8;           ///< CAS write latency.
    Cycles tRCD = 11;         ///< ACT to RD/WR.
    Cycles tRP = 11;          ///< PRE to ACT.
    Cycles tRAS = 28;         ///< ACT to PRE.
    Cycles tRC = 39;          ///< ACT to ACT, same bank.
    Cycles tBURST = 4;        ///< BL8 data burst occupancy.
    Cycles tCCD = 4;          ///< CAS to CAS, same rank.
    Cycles tRRD = 5;          ///< ACT to ACT, different bank, same rank.
    Cycles tFAW = 24;         ///< Four-activate window, per rank.
    Cycles tWTR = 6;          ///< Write burst end to read CAS, same rank.
    Cycles tRTP = 6;          ///< Read CAS to PRE.
    Cycles tWR = 12;          ///< Write recovery (burst end to PRE).
    Cycles tRTRS = 2;         ///< Rank-to-rank data-bus switch penalty.
    Cycles tREFI = 6240;      ///< Refresh interval (7.8 us).
    Cycles tRFC = 128;        ///< Refresh cycle time (160 ns).
    Cycles tXP = 5;           ///< Fast power-down exit.
    Cycles tXPDLL = 19;       ///< Slow (DLL-off) power-down exit, 24 ns.
    Cycles tCKE = 4;          ///< Minimum power-down residency.

    /** Nanoseconds for @p c cycles. */
    double ns(Cycles c) const { return tckNs * static_cast<double>(c); }
};

/** Physical organization of one memory channel. */
struct Geometry
{
    unsigned channels = 1;        ///< Channels in the system.
    unsigned ranksPerChannel = 8; ///< Table II: 8 ranks per channel.
    unsigned banksPerRank = 8;    ///< DDR3: 8 banks per chip.
    unsigned rowsPerBank = 32768; ///< MT41J256M8: 32K rows.
    unsigned rowBufferBytes = 8192; ///< Table II: 8 KB row buffer.
    unsigned devicesPerRank = 9;  ///< x8 devices incl. ECC, 72-bit bus.

    /** 64-byte blocks that fit in one open row. */
    unsigned blocksPerRow() const { return rowBufferBytes / blockBytes; }

    /** Bytes addressable in one rank. */
    std::uint64_t
    bytesPerRank() const
    {
        return static_cast<std::uint64_t>(banksPerRank) * rowsPerBank *
               rowBufferBytes;
    }

    /** Bytes addressable in one channel. */
    std::uint64_t
    bytesPerChannel() const
    {
        return bytesPerRank() * ranksPerChannel;
    }

    /** Total bytes in the system. */
    std::uint64_t
    totalBytes() const
    {
        return bytesPerChannel() * channels;
    }
};

/** DDR3-1600 timing preset (default-constructed TimingParams). */
TimingParams ddr3_1600();

/** Slower DDR3-1066 preset for sensitivity studies. */
TimingParams ddr3_1066();

/**
 * DDR4-2400 preset (the paper's footnote 1 discusses adapting the
 * SDIMM buffer to DDR4 topologies): higher bandwidth, higher
 * absolute-cycle latencies.
 */
TimingParams ddr4_2400();

} // namespace secdimm::dram

#endif // SECUREDIMM_DRAM_TIMING_HH
