#include "dram/dram_system.hh"

#include <algorithm>

#include "util/logging.hh"

namespace secdimm::dram
{

DramSystem::DramSystem(const std::string &name,
                       const TimingParams &timing, const Geometry &geom,
                       MapPolicy map_policy, SchedPolicy sched_policy)
{
    SD_ASSERT(geom.channels >= 1);
    for (unsigned c = 0; c < geom.channels; ++c) {
        channels_.push_back(std::make_unique<DramChannel>(
            name + ".ch" + std::to_string(c), timing, geom, map_policy,
            sched_policy));
    }
}

void
DramSystem::setCompletionCallback(CompletionFn fn)
{
    for (auto &ch : channels_)
        ch->setCompletionCallback(fn);
}

Addr
DramSystem::blockCount() const
{
    return channels_[0]->addressMap().blockCount() * channels_.size();
}

unsigned
DramSystem::channelOf(Addr global_block) const
{
    return static_cast<unsigned>(global_block % channels_.size());
}

Addr
DramSystem::localBlockOf(Addr global_block) const
{
    return global_block / channels_.size();
}

bool
DramSystem::canEnqueue(Addr global_block, bool write) const
{
    return channels_[channelOf(global_block)]->canEnqueue(write);
}

void
DramSystem::enqueue(std::uint64_t id, Addr global_block, bool write,
                    Tick at)
{
    channels_[channelOf(global_block)]->enqueue(
        id, localBlockOf(global_block), write, at);
}

Tick
DramSystem::nextEventAt() const
{
    Tick best = tickNever;
    for (const auto &ch : channels_)
        best = std::min(best, ch->nextEventAt());
    return best;
}

void
DramSystem::advanceTo(Tick now)
{
    for (auto &ch : channels_)
        ch->advanceTo(now);
}

Tick
DramSystem::drainAll()
{
    Tick end = 0;
    while (!idle()) {
        const Tick next = nextEventAt();
        SD_ASSERT(next != tickNever);
        advanceTo(next);
    }
    for (auto &ch : channels_)
        end = std::max(end, ch->curTick());
    return end;
}

bool
DramSystem::idle() const
{
    return std::all_of(channels_.begin(), channels_.end(),
                       [](const auto &ch) { return ch->idle(); });
}

void
DramSystem::finalizeStats(Tick end)
{
    for (auto &ch : channels_)
        ch->finalizeStats(end);
}

ChannelStats
DramSystem::aggregateStats() const
{
    ChannelStats agg;
    for (const auto &ch : channels_) {
        const ChannelStats &s = ch->stats();
        agg.activates += s.activates;
        agg.precharges += s.precharges;
        agg.reads += s.reads;
        agg.writes += s.writes;
        agg.rowHits += s.rowHits;
        agg.rowMisses += s.rowMisses;
        agg.refreshes += s.refreshes;
        agg.powerDownEntries += s.powerDownEntries;
        agg.powerUps += s.powerUps;
        agg.rankSwitches += s.rankSwitches;
        agg.readLatencySum += s.readLatencySum;
        agg.readLatencyCount += s.readLatencyCount;
    }
    return agg;
}

} // namespace secdimm::dram
