/**
 * @file
 * Timing state of a single DRAM bank.  All fields are earliest-legal
 * ticks maintained by the channel as commands issue.
 */

#ifndef SECUREDIMM_DRAM_BANK_HH
#define SECUREDIMM_DRAM_BANK_HH

#include <cstdint>

#include "util/types.hh"

namespace secdimm::dram
{

/** Row value meaning "no row open". */
inline constexpr int noOpenRow = -1;

/** Per-bank row state and timing fences. */
struct BankState
{
    int openRow = noOpenRow;   ///< Currently open row, or noOpenRow.

    Tick actAllowedAt = 0;     ///< Earliest ACT (tRP / tRC fences).
    Tick preAllowedAt = 0;     ///< Earliest PRE (tRAS / tRTP / tWR).
    Tick casAllowedAt = 0;     ///< Earliest RD/WR CAS (tRCD fence).

    bool rowOpen() const { return openRow != noOpenRow; }
};

} // namespace secdimm::dram

#endif // SECUREDIMM_DRAM_BANK_HH
