#include "dram/power_model.hh"

namespace secdimm::dram
{

EnergyBreakdown &
EnergyBreakdown::operator+=(const EnergyBreakdown &o)
{
    actPreNj += o.actPreNj;
    rdWrNj += o.rdWrNj;
    ioNj += o.ioNj;
    backgroundNj += o.backgroundNj;
    refreshNj += o.refreshNj;
    return *this;
}

PowerModel::PowerModel(const TimingParams &timing, const Geometry &geom,
                       bool on_dimm_io, const DramCurrents &currents,
                       const IoEnergyParams &io)
    : timing_(timing),
      geom_(geom),
      onDimmIo_(on_dimm_io),
      cur_(currents),
      io_(io)
{
}

double
PowerModel::ioEnergyPerBurstNj() const
{
    const double bits = blockBytes * 8.0;
    const double pj_per_bit =
        onDimmIo_ ? io_.onDimmPjPerBit : io_.offDimmPjPerBit;
    return bits * pj_per_bit * 1e-3;
}

EnergyBreakdown
PowerModel::compute(const ChannelStats &stats,
                    const std::vector<RankState> &ranks) const
{
    EnergyBreakdown e;
    const double devices = geom_.devicesPerRank;
    const double ns = 1e-9;
    const double ma = 1e-3;
    const double to_nj = 1e9;

    // Activate/precharge pair: incremental current above active
    // standby for one tRC window, per device (Micron TN-41-01).
    const double act_nj = (cur_.idd0 - cur_.idd3n) * ma * cur_.vdd *
                          timing_.ns(timing_.tRC) * ns * devices * to_nj;
    e.actPreNj = act_nj * static_cast<double>(stats.activates);

    // Read/write core energy per burst.
    const double burst_ns = timing_.ns(timing_.tBURST);
    const double rd_nj = (cur_.idd4r - cur_.idd3n) * ma * cur_.vdd *
                         burst_ns * ns * devices * to_nj;
    const double wr_nj = (cur_.idd4w - cur_.idd3n) * ma * cur_.vdd *
                         burst_ns * ns * devices * to_nj;
    e.rdWrNj = rd_nj * static_cast<double>(stats.reads) +
               wr_nj * static_cast<double>(stats.writes);

    // I/O and termination per burst.
    e.ioNj = ioEnergyPerBurstNj() *
             static_cast<double>(stats.reads + stats.writes);

    // Background: integrate rank power-state residencies.
    const double p_act = cur_.idd3n * ma * cur_.vdd * devices;   // W
    const double p_pre = cur_.idd2n * ma * cur_.vdd * devices;
    const double p_pd = cur_.idd2p * ma * cur_.vdd * devices;
    for (const auto &r : ranks) {
        const double t_act =
            timing_.ns(r.cyclesActiveStandby) * ns;
        const double t_pre =
            timing_.ns(r.cyclesPrechargeStandby) * ns;
        const double t_pd = timing_.ns(r.cyclesPowerDown) * ns;
        e.backgroundNj +=
            (p_act * t_act + p_pre * t_pre + p_pd * t_pd) * to_nj;
    }

    // Refresh: incremental current above precharge standby for tRFC.
    const double ref_nj = (cur_.idd5 - cur_.idd2n) * ma * cur_.vdd *
                          timing_.ns(timing_.tRFC) * ns * devices *
                          to_nj;
    e.refreshNj = ref_nj * static_cast<double>(stats.refreshes);

    return e;
}

} // namespace secdimm::dram
