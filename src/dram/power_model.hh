/**
 * @file
 * DRAM energy model in the style of the Micron power calculator
 * (IDD-current based), the tool the paper uses for its energy results.
 * Computes activate/precharge, read/write core, I/O + termination,
 * background (per power state), and refresh energy from the counters a
 * DramChannel accumulates.
 *
 * The I/O term distinguishes off-DIMM transfers (full-length
 * motherboard trace, full termination) from on-DIMM transfers between
 * the SDIMM secure buffer and its DRAM chips (short trace); localizing
 * shuffle traffic on the DIMM is one of the paper's two energy levers,
 * the other being rank power-down.
 */

#ifndef SECUREDIMM_DRAM_POWER_MODEL_HH
#define SECUREDIMM_DRAM_POWER_MODEL_HH

#include <vector>

#include "dram/channel.hh"
#include "dram/rank.hh"
#include "dram/timing.hh"

namespace secdimm::dram
{

/** Per-device IDD currents (mA) and voltage, DDR3-1600 x8 class. */
struct DramCurrents
{
    double vdd = 1.5;
    double idd0 = 95.0;   ///< One-bank ACT-PRE cycling.
    double idd2p = 12.0;  ///< Precharge power-down (slow exit).
    double idd2n = 42.0;  ///< Precharge standby.
    double idd3n = 45.0;  ///< Active standby.
    double idd4r = 180.0; ///< Read burst.
    double idd4w = 185.0; ///< Write burst.
    double idd5 = 215.0;  ///< Refresh.
};

/** I/O energy per bit moved, picojoules. */
struct IoEnergyParams
{
    /**
     * CPU <-> DIMM over the motherboard channel: full-length trace
     * with on-die termination at both ends (~15-25 pJ/bit in the
     * DDR3 literature).
     */
    double offDimmPjPerBit = 18.0;
    /** Secure buffer <-> DRAM chips: short on-DIMM trace. */
    double onDimmPjPerBit = 4.0;
};

/** Energy totals in nanojoules. */
struct EnergyBreakdown
{
    double actPreNj = 0.0;
    double rdWrNj = 0.0;
    double ioNj = 0.0;
    double backgroundNj = 0.0;
    double refreshNj = 0.0;

    double
    totalNj() const
    {
        return actPreNj + rdWrNj + ioNj + backgroundNj + refreshNj;
    }

    EnergyBreakdown &operator+=(const EnergyBreakdown &o);
};

/** Computes channel energy from activity counters and rank timelines. */
class PowerModel
{
  public:
    /**
     * @param on_dimm_io  true for SDIMM-internal channels, whose data
     *                    bursts never leave the DIMM.
     */
    PowerModel(const TimingParams &timing, const Geometry &geom,
               bool on_dimm_io,
               const DramCurrents &currents = DramCurrents{},
               const IoEnergyParams &io = IoEnergyParams{});

    /**
     * Total energy for a channel whose ranks have been finalized to
     * the end of simulation (DramChannel::finalizeStats).
     */
    EnergyBreakdown compute(const ChannelStats &stats,
                            const std::vector<RankState> &ranks) const;

    /** Energy of a single 64-byte burst's I/O (bench helper). */
    double ioEnergyPerBurstNj() const;

  private:
    TimingParams timing_;
    Geometry geom_;
    bool onDimmIo_;
    DramCurrents cur_;
    IoEnergyParams io_;
};

} // namespace secdimm::dram

#endif // SECUREDIMM_DRAM_POWER_MODEL_HH
