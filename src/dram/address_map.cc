#include "dram/address_map.hh"

#include "util/bit_utils.hh"
#include "util/logging.hh"

namespace secdimm::dram
{

AddressMap::AddressMap(const Geometry &geom, MapPolicy policy)
    : geom_(geom), policy_(policy)
{
    SD_ASSERT(isPowerOfTwo(geom.blocksPerRow()));
    SD_ASSERT(isPowerOfTwo(geom.banksPerRank));
    SD_ASSERT(isPowerOfTwo(geom.ranksPerChannel));
    SD_ASSERT(isPowerOfTwo(geom.rowsPerBank));
    colBits_ = floorLog2(geom.blocksPerRow());
    bankBits_ = floorLog2(geom.banksPerRank);
    rankBits_ = floorLog2(geom.ranksPerChannel);
    rowBits_ = floorLog2(geom.rowsPerBank);
    blockCount_ = Addr{1} << (colBits_ + bankBits_ + rankBits_ + rowBits_);
}

DramCoord
AddressMap::decode(Addr block_index) const
{
    SD_ASSERT(block_index < blockCount_);
    DramCoord c;
    unsigned shift = 0;
    c.col = static_cast<unsigned>(bits(block_index, shift, colBits_));
    shift += colBits_;
    c.bank = static_cast<unsigned>(bits(block_index, shift, bankBits_));
    shift += bankBits_;
    switch (policy_) {
      case MapPolicy::RowRankBankCol:
        c.rank = static_cast<unsigned>(
            bits(block_index, shift, rankBits_));
        shift += rankBits_;
        c.row = static_cast<unsigned>(bits(block_index, shift, rowBits_));
        break;
      case MapPolicy::RankRowBankCol:
        c.row = static_cast<unsigned>(bits(block_index, shift, rowBits_));
        shift += rowBits_;
        c.rank = static_cast<unsigned>(
            bits(block_index, shift, rankBits_));
        break;
    }
    return c;
}

Addr
AddressMap::encode(const DramCoord &coord) const
{
    Addr a = 0;
    unsigned shift = 0;
    a = insertBits(a, shift, colBits_, coord.col);
    shift += colBits_;
    a = insertBits(a, shift, bankBits_, coord.bank);
    shift += bankBits_;
    switch (policy_) {
      case MapPolicy::RowRankBankCol:
        a = insertBits(a, shift, rankBits_, coord.rank);
        shift += rankBits_;
        a = insertBits(a, shift, rowBits_, coord.row);
        break;
      case MapPolicy::RankRowBankCol:
        a = insertBits(a, shift, rowBits_, coord.row);
        shift += rowBits_;
        a = insertBits(a, shift, rankBits_, coord.rank);
        break;
    }
    return a;
}

} // namespace secdimm::dram
