/**
 * @file
 * Timing and power state of one rank: tFAW/tRRD activation fences,
 * write-to-read turnaround, refresh schedule, and the power-state
 * timeline the background-energy model integrates over.
 */

#ifndef SECUREDIMM_DRAM_RANK_HH
#define SECUREDIMM_DRAM_RANK_HH

#include <array>
#include <cstdint>

#include "util/types.hh"

namespace secdimm::dram
{

/** Background power state of a rank (Micron power-calc categories). */
enum class RankPowerState
{
    ActiveStandby,     ///< At least one bank open.
    PrechargeStandby,  ///< All banks closed, CKE high.
    PowerDown,         ///< Precharge power-down, CKE low.
};

/** Per-rank timing fences and power accounting. */
struct RankState
{
    /** Ring buffer of the last four ACT issue times (tFAW window). */
    std::array<Tick, 4> actWindow{};
    unsigned actWindowIdx = 0;
    unsigned actCount = 0;     ///< ACTs recorded so far (caps at 4).

    Tick lastActAt = 0;        ///< For tRRD (any bank in this rank).
    bool anyActIssued = false;
    Tick wrToRdAt = 0;         ///< Earliest read CAS after a write (tWTR).

    unsigned openBanks = 0;

    Tick nextRefreshAt = 0;    ///< When the next REF falls due.
    Tick refreshDoneAt = 0;    ///< Rank blocked until here during REF.

    RankPowerState powerState = RankPowerState::PrechargeStandby;
    Tick powerUpAt = 0;        ///< Commands blocked until exit done.
    Tick lastStateChange = 0;

    /** Integrated cycles spent in each background state. */
    std::uint64_t cyclesActiveStandby = 0;
    std::uint64_t cyclesPrechargeStandby = 0;
    std::uint64_t cyclesPowerDown = 0;

    /** Accumulate state residency up to @p now, then switch state. */
    void
    accountTo(Tick now)
    {
        if (now <= lastStateChange)
            return;
        const std::uint64_t d = now - lastStateChange;
        switch (powerState) {
          case RankPowerState::ActiveStandby:
            cyclesActiveStandby += d;
            break;
          case RankPowerState::PrechargeStandby:
            cyclesPrechargeStandby += d;
            break;
          case RankPowerState::PowerDown:
            cyclesPowerDown += d;
            break;
        }
        lastStateChange = now;
    }

    void
    setPowerState(RankPowerState s, Tick now)
    {
        accountTo(now);
        powerState = s;
    }

    /** Earliest tick the tFAW window allows a new ACT. */
    Tick
    fawAllowedAt(Cycles tFAW) const
    {
        if (actCount < actWindow.size())
            return 0;
        return actWindow[actWindowIdx] + tFAW;
    }

    void
    recordAct(Tick t)
    {
        actWindow[actWindowIdx] = t;
        actWindowIdx = (actWindowIdx + 1) % actWindow.size();
        if (actCount < actWindow.size())
            ++actCount;
        lastActAt = t;
        anyActIssued = true;
    }
};

} // namespace secdimm::dram

#endif // SECUREDIMM_DRAM_RANK_HH
