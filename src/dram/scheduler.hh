/**
 * @file
 * Memory-scheduler policy selection.  The paper's backend uses FR-FCFS
 * with read priority and a write-drain watermark of 40 (Section IV-A);
 * FCFS is kept as an ablation point.
 */

#ifndef SECUREDIMM_DRAM_SCHEDULER_HH
#define SECUREDIMM_DRAM_SCHEDULER_HH

#include <cstdint>

namespace secdimm::dram
{

/** Request-selection policy within a channel. */
enum class SchedPolicy
{
    FrFcfs, ///< First-ready (row hit) first, then oldest.
    Fcfs,   ///< Strictly oldest first.
};

/** Write-queue watermarks (USIMM-style drain hysteresis). */
struct WriteDrainPolicy
{
    unsigned queueCapacity = 64; ///< Table II: 64-entry write queue.
    unsigned highWatermark = 40; ///< Start draining above this.
    unsigned lowWatermark = 20;  ///< Stop draining below this.
};

} // namespace secdimm::dram

#endif // SECUREDIMM_DRAM_SCHEDULER_HH
