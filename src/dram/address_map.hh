/**
 * @file
 * Block-address to DRAM-coordinate mapping.  The ORAM layouts in the
 * paper depend on where consecutive blocks land: the Ren et al. subtree
 * layout wants consecutive blocks in the same row (row-buffer hits),
 * and the low-power layout (Section III-E) wants whole subtrees inside
 * one rank.
 */

#ifndef SECUREDIMM_DRAM_ADDRESS_MAP_HH
#define SECUREDIMM_DRAM_ADDRESS_MAP_HH

#include "dram/request.hh"
#include "dram/timing.hh"

namespace secdimm::dram
{

/** How block addresses spread across ranks/banks/rows. */
enum class MapPolicy
{
    /**
     * row : rank : bank : column.  Consecutive blocks fill a row in one
     * bank, then move to the next bank, then the next rank.  Good
     * row-buffer locality for sequential path reads (baseline layout).
     */
    RowRankBankCol,

    /**
     * rank : row : bank : column.  The rank is selected by the TOP
     * address bits, so a contiguous region stays entirely inside one
     * rank -- the low-power subtree-per-rank layout of Section III-E.
     */
    RankRowBankCol,
};

/** Maps channel-local block addresses to (rank, bank, row, col). */
class AddressMap
{
  public:
    AddressMap(const Geometry &geom, MapPolicy policy);

    /** Decode a channel-local block index. */
    DramCoord decode(Addr block_index) const;

    /** Inverse of decode (used by tests and layout planners). */
    Addr encode(const DramCoord &coord) const;

    /** Blocks addressable in the channel. */
    Addr blockCount() const { return blockCount_; }

    MapPolicy policy() const { return policy_; }

  private:
    Geometry geom_;
    MapPolicy policy_;
    Addr blockCount_;
    unsigned colBits_;
    unsigned bankBits_;
    unsigned rankBits_;
    unsigned rowBits_;
};

} // namespace secdimm::dram

#endif // SECUREDIMM_DRAM_ADDRESS_MAP_HH
