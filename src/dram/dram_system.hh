/**
 * @file
 * Multi-channel DRAM system: block-interleaves a flat physical block
 * address space across channels (the baseline layout scatters the
 * cache lines of an ORAM bucket across channels, Ren et al. [10]) and
 * provides a single completion stream and event loop.
 */

#ifndef SECUREDIMM_DRAM_DRAM_SYSTEM_HH
#define SECUREDIMM_DRAM_DRAM_SYSTEM_HH

#include <memory>
#include <string>
#include <vector>

#include "dram/channel.hh"

namespace secdimm::dram
{

/** A set of identical channels behind one block-interleaved space. */
class DramSystem
{
  public:
    using CompletionFn = DramChannel::CompletionFn;

    DramSystem(const std::string &name, const TimingParams &timing,
               const Geometry &geom, MapPolicy map_policy,
               SchedPolicy sched_policy = SchedPolicy::FrFcfs);

    void setCompletionCallback(CompletionFn fn);

    /** Total 64-byte blocks across all channels. */
    Addr blockCount() const;

    unsigned channelOf(Addr global_block) const;
    Addr localBlockOf(Addr global_block) const;

    bool canEnqueue(Addr global_block, bool write) const;
    void enqueue(std::uint64_t id, Addr global_block, bool write,
                 Tick at);

    Tick nextEventAt() const;
    void advanceTo(Tick now);

    /** Run all channels until idle; returns the final busy tick. */
    Tick drainAll();

    bool idle() const;

    DramChannel &channel(unsigned i) { return *channels_[i]; }
    const DramChannel &channel(unsigned i) const { return *channels_[i]; }
    unsigned channelCount() const
    {
        return static_cast<unsigned>(channels_.size());
    }

    void finalizeStats(Tick end);

    /** Sum of a stat across channels (helper for benches). */
    ChannelStats aggregateStats() const;

  private:
    std::vector<std::unique_ptr<DramChannel>> channels_;
};

} // namespace secdimm::dram

#endif // SECUREDIMM_DRAM_DRAM_SYSTEM_HH
