/**
 * @file
 * Walks through the paper's threat model from the adversary's side:
 * what a logic analyzer on the memory channel actually observes under
 * the Independent SDIMM protocol, and what happens when the adversary
 * turns active (tampering with stored ciphertext, replaying link
 * messages).
 *
 *   $ ./examples/adversary_view
 */

#include <cstdio>
#include <map>
#include <vector>

#include "sdimm/independent_oram.hh"
#include "sdimm/link_session.hh"

using namespace secdimm;
using namespace secdimm::sdimm;

namespace
{

IndependentOram
makeOram(std::uint64_t seed)
{
    IndependentOram::Params p;
    p.perSdimm.levels = 7;
    p.numSdimms = 2;
    return IndependentOram(p, seed);
}

/** Histogram of the command stream the bus analyzer captures. */
std::map<std::string, unsigned>
commandHistogram(const std::vector<BusEvent> &trace)
{
    std::map<std::string, unsigned> hist;
    for (const BusEvent &e : trace) {
        char key[64];
        std::snprintf(key, sizeof(key), "%-13s -> SDIMM %u",
                      commandName(e.type), e.sdimm);
        ++hist[key];
    }
    return hist;
}

} // namespace

int
main()
{
    std::printf("=== passive adversary: the command stream ===\n\n");

    // Pattern A: hammer one block.  Pattern B: sweep many blocks.
    auto run = [](bool hammer) {
        IndependentOram oram = makeOram(11);
        const BlockData v{};
        oram.access(0, oram::OramOp::Write, &v);
        oram.clearBusTrace();
        for (int i = 0; i < 200; ++i) {
            const Addr a = hammer ? 0 : static_cast<Addr>(i % 64);
            oram.access(a, oram::OramOp::Read);
        }
        return commandHistogram(oram.busTrace());
    };
    const auto hist_a = run(true);
    const auto hist_b = run(false);

    std::printf("%-28s %10s %10s\n", "observed command",
                "hammer-one", "sweep-many");
    for (const auto &kv : hist_a) {
        const auto it = hist_b.find(kv.first);
        std::printf("%-28s %10u %10u\n", kv.first.c_str(), kv.second,
                    it == hist_b.end() ? 0 : it->second);
    }
    std::printf("\nper access the bus always carries: 1 ACCESS to a "
                "uniformly random SDIMM,\nPROBE polls, 1 FETCH_RESULT, "
                "and 1 APPEND to EVERY SDIMM -- regardless of\nwhat "
                "the program touched.  Payloads are sealed and "
                "fixed-size.\n");

    std::printf("\n=== active adversary: tampering and replay ===\n\n");

    // Tamper with a stored bucket: the next path read catches it.
    {
        IndependentOram oram = makeOram(13);
        const BlockData v{};
        oram.access(3, oram::OramOp::Write, &v);
        auto &store = oram.buffer(0).oram().store();
        for (std::uint64_t seq = 0; seq < store.numBuckets(); ++seq)
            store.tamperData(seq, 5);
        for (int i = 0; i < 4; ++i)
            oram.access(3, oram::OramOp::Read);
        std::printf("flip one ciphertext bit per bucket  -> integrity "
                    "%s\n",
                    oram.integrityOk() ? "OK (MISSED!)" : "VIOLATION "
                                                          "detected");
    }

    // Replay a sealed link message: the session counter rejects it.
    {
        Rng rng(17);
        auto [cpu, dimm] = establishLink(rng);
        const std::vector<std::uint8_t> payload(89, 0x42);
        const SealedMessage msg = cpu.seal(0x02, payload);
        const bool first = dimm.unseal(msg).has_value();
        const bool replayed = dimm.unseal(msg).has_value();
        std::printf("replay a captured ACCESS message    -> first "
                    "delivery %s, replay %s\n",
                    first ? "accepted" : "rejected",
                    replayed ? "ACCEPTED (BROKEN!)" : "rejected");
    }

    // Bit-flip a sealed message in flight.
    {
        Rng rng(19);
        auto [cpu, dimm] = establishLink(rng);
        SealedMessage msg = cpu.seal(0x02,
                                     std::vector<std::uint8_t>(89, 1));
        msg.body[40] ^= 0x10;
        std::printf("flip one bit of an in-flight message -> %s\n",
                    dimm.unseal(msg).has_value()
                        ? "ACCEPTED (BROKEN!)"
                        : "rejected (MAC mismatch)");
    }

    return 0;
}
