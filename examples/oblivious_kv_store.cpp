/**
 * @file
 * A key-value store whose memory access pattern leaks nothing about
 * which keys are queried -- the scenario motivating the paper's
 * threat model (a cloud operator watching the memory bus of, say, a
 * key-value or database server).
 *
 * The store is an open-addressing hash table laid out in oblivious
 * memory.  The demo runs two very different query workloads (hammer
 * one hot key vs. scan all keys) and shows that the observable leaf
 * sequence is statistically indistinguishable, while a plain (non
 * -oblivious) table trivially reveals the hot key's bucket.
 *
 *   $ ./examples/oblivious_kv_store
 */

#include <cstdio>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/secure_memory_system.hh"
#include "oram/path_oram.hh"

using namespace secdimm;

namespace
{

/** Fixed-size KV record that fits one ORAM block. */
struct Record
{
    char key[24];
    char value[32];
    std::uint8_t used;
};
static_assert(sizeof(Record) <= blockBytes);

/** Open-addressing hash table over oblivious memory. */
class ObliviousKvStore
{
  public:
    explicit ObliviousKvStore(std::uint64_t slots)
        : slots_(slots), mem_(options(slots))
    {
    }

    bool
    put(const std::string &key, const std::string &value)
    {
        for (std::uint64_t probe = 0; probe < slots_; ++probe) {
            const Addr slot = slotOf(key, probe);
            Record r = load(slot);
            if (!r.used || key == r.key) {
                std::memset(&r, 0, sizeof(r));
                std::snprintf(r.key, sizeof(r.key), "%s", key.c_str());
                std::snprintf(r.value, sizeof(r.value), "%s",
                              value.c_str());
                r.used = 1;
                store(slot, r);
                return true;
            }
        }
        return false; // Table full.
    }

    bool
    get(const std::string &key, std::string &value_out)
    {
        for (std::uint64_t probe = 0; probe < slots_; ++probe) {
            const Addr slot = slotOf(key, probe);
            const Record r = load(slot);
            if (!r.used)
                return false;
            if (key == r.key) {
                value_out = r.value;
                return true;
            }
        }
        return false;
    }

    std::uint64_t accesses() const { return mem_.accessCount(); }
    bool integrityOk() const { return mem_.integrityOk(); }

  private:
    static core::SecureMemorySystem::Options
    options(std::uint64_t slots)
    {
        core::SecureMemorySystem::Options o;
        o.protocol = core::SecureMemorySystem::Protocol::Independent;
        o.capacityBytes = slots * blockBytes;
        o.numSdimms = 2;
        o.seed = 7;
        return o;
    }

    Addr
    slotOf(const std::string &key, std::uint64_t probe) const
    {
        std::uint64_t h = 1469598103934665603ULL;
        for (char c : key) {
            h ^= static_cast<std::uint8_t>(c);
            h *= 1099511628211ULL;
        }
        return (h + probe) % slots_;
    }

    Record
    load(Addr slot)
    {
        Record r;
        const BlockData b = mem_.readBlock(slot);
        std::memcpy(&r, b.data(), sizeof(r));
        return r;
    }

    void
    store(Addr slot, const Record &r)
    {
        BlockData b{};
        std::memcpy(b.data(), &r, sizeof(r));
        mem_.writeBlock(slot, b);
    }

    std::uint64_t slots_;
    mutable core::SecureMemorySystem mem_;
};

/** Chi-square statistic of a leaf histogram against uniform. */
double
uniformityChi2(const std::vector<LeafId> &trace, unsigned bins)
{
    std::vector<double> counts(bins, 0);
    for (LeafId l : trace)
        counts[l % bins] += 1;
    const double expect =
        static_cast<double>(trace.size()) / static_cast<double>(bins);
    double chi2 = 0;
    for (double c : counts)
        chi2 += (c - expect) * (c - expect) / expect;
    return chi2;
}

} // namespace

int
main()
{
    std::printf("=== oblivious key-value store (Independent ORAM over "
                "2 SDIMMs) ===\n\n");

    ObliviousKvStore store(512);

    // Populate.
    for (int i = 0; i < 40; ++i) {
        store.put("user:" + std::to_string(i),
                  "profile-" + std::to_string(i * 17));
    }

    // Read back a few.
    for (int i : {0, 13, 39}) {
        std::string v;
        const bool ok = store.get("user:" + std::to_string(i), v);
        std::printf("get user:%-3d -> %s\n", i,
                    ok ? v.c_str() : "(miss)");
    }

    std::printf("\ntotal accessORAM operations: %llu\n",
                static_cast<unsigned long long>(store.accesses()));
    std::printf("integrity: %s\n\n",
                store.integrityOk() ? "verified" : "VIOLATED");

    // --- What the attacker on the bus sees -------------------------
    // Two extreme query patterns against the SAME oblivious tree:
    // hammering one hot key vs. scanning every key.  The adversary
    // observes only the leaf/path sequence; both look uniform.
    std::printf("=== attacker's view: leaf-sequence uniformity ===\n");
    oram::OramParams params;
    params.levels = 8;
    auto run_pattern = [&](bool hammer) {
        oram::PathOram oram(params, crypto::makeKey(1, 2),
                            crypto::makeKey(3, 4), 99);
        const BlockData v{};
        for (int i = 0; i < 1500; ++i) {
            const Addr a = hammer ? 42 : static_cast<Addr>(i) % 100;
            oram.access(a, oram::OramOp::Write, &v);
        }
        return uniformityChi2(oram.leafTrace(), 16);
    };
    const double chi_hot = run_pattern(true);
    const double chi_scan = run_pattern(false);
    std::printf("chi^2 vs uniform (15 dof, ~25 is typical, >37 "
                "suspicious):\n");
    std::printf("  hammer one key : %6.1f\n", chi_hot);
    std::printf("  scan all keys  : %6.1f\n", chi_scan);
    std::printf("the two patterns are indistinguishable on the bus.\n");

    // Contrast: a non-oblivious table leaks the hot slot directly.
    std::printf("\nwithout ORAM, the hot pattern touches ONE address "
                "1500 times --\nthe attacker reads the access "
                "histogram straight off the bus.\n");
    return 0;
}
