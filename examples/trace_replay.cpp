/**
 * @file
 * Drive the full timing simulator from the command line: pick a
 * workload and a memory design, replay the trace, and print the
 * metrics the paper's figures are built from.
 *
 *   $ ./examples/trace_replay                      # defaults
 *   $ ./examples/trace_replay mcf INDEP-SPLIT 2000
 *   $ ./examples/trace_replay --list
 *   $ ./examples/trace_replay mcf SPLIT-2 1000 --metrics      # JSON
 *   $ ./examples/trace_replay mcf SPLIT-2 1000 --metrics=m.json
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "core/simulator.hh"

using namespace secdimm;
using namespace secdimm::core;

namespace
{

struct DesignRow
{
    const char *name;
    DesignPoint design;
};

const DesignRow designs[] = {
    {"NonSecure", DesignPoint::NonSecure},
    {"PathORAM", DesignPoint::PathOram},
    {"Freecursive", DesignPoint::Freecursive},
    {"INDEP-2", DesignPoint::Indep2},
    {"SPLIT-2", DesignPoint::Split2},
    {"INDEP-4", DesignPoint::Indep4},
    {"SPLIT-4", DesignPoint::Split4},
    {"INDEP-SPLIT", DesignPoint::IndepSplit},
};

void
listOptions()
{
    std::printf("workloads:");
    for (const auto &p : trace::spec2006Profiles())
        std::printf(" %s", p.name.c_str());
    std::printf("\ndesigns:  ");
    for (const auto &d : designs)
        std::printf(" %s", d.name);
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        listOptions();
        return 0;
    }

    // Split --metrics[=path] off from the positional arguments.
    bool dump_metrics = false;
    std::string metrics_path; // Empty = stdout.
    std::vector<const char *> pos;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics") == 0) {
            dump_metrics = true;
        } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
            dump_metrics = true;
            metrics_path = argv[i] + 10;
        } else {
            pos.push_back(argv[i]);
        }
    }

    const std::string workload = !pos.empty() ? pos[0] : "mcf";
    const std::string design_name = pos.size() > 1 ? pos[1] : "SPLIT-2";
    const std::uint64_t accesses =
        pos.size() > 2 ? std::strtoull(pos[2], nullptr, 0) : 1000;

    const trace::WorkloadProfile *profile =
        trace::findProfile(workload);
    if (profile == nullptr) {
        std::printf("unknown workload '%s'\n", workload.c_str());
        listOptions();
        return 1;
    }
    const DesignRow *row = nullptr;
    for (const auto &d : designs) {
        if (design_name == d.name)
            row = &d;
    }
    if (row == nullptr) {
        std::printf("unknown design '%s'\n", design_name.c_str());
        listOptions();
        return 1;
    }

    SystemConfig cfg = makeConfig(row->design, 24, 7);
    SimLengths lens;
    lens.measureRecords = accesses;
    lens.warmupRecords = 20000;

    std::printf("replaying %s on %s (%llu measured LLC-miss records, "
                "24-level tree, 7 cached)...\n",
                workload.c_str(), row->name,
                static_cast<unsigned long long>(accesses));

    const SimResult r = runWorkload(cfg, *profile, lens, 1);

    std::printf("\ncycles (memory clock):    %llu\n",
                static_cast<unsigned long long>(r.core.cycles));
    std::printf("instructions retired:     %llu (IPC %.3f)\n",
                static_cast<unsigned long long>(r.core.instructions),
                r.core.ipc());
    std::printf("L1 misses replayed:       %llu\n",
                static_cast<unsigned long long>(r.core.l1Misses));
    std::printf("LLC misses (to memory):   %llu\n",
                static_cast<unsigned long long>(r.core.llcMisses));
    std::printf("memory cycles per miss:   %.0f\n", r.cyclesPerMiss());
    if (r.accessOrams) {
        std::printf("accessORAM operations:    %llu (%.2f per miss)\n",
                    static_cast<unsigned long long>(r.accessOrams),
                    r.avgOramsPerMiss);
    }
    std::printf("off-DIMM channel bursts:  %llu\n",
                static_cast<unsigned long long>(r.offDimmLines));
    if (r.probes) {
        std::printf("PROBE polls:              %llu\n",
                    static_cast<unsigned long long>(r.probes));
    }
    std::printf("memory energy:            %.1f uJ  (act/pre %.1f, "
                "rd/wr %.1f, io %.1f, bkgd %.1f, refresh %.1f)\n",
                r.energy.totalNj() / 1000.0,
                r.energy.actPreNj / 1000.0, r.energy.rdWrNj / 1000.0,
                r.energy.ioNj / 1000.0, r.energy.backgroundNj / 1000.0,
                r.energy.refreshNj / 1000.0);

    if (dump_metrics) {
        const std::string json = r.metrics.toJson();
        if (metrics_path.empty()) {
            std::printf("\n%s\n", json.c_str());
        } else {
            std::FILE *f = std::fopen(metrics_path.c_str(), "w");
            if (f == nullptr) {
                std::printf("cannot write %s\n", metrics_path.c_str());
                return 1;
            }
            std::fwrite(json.data(), 1, json.size(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("\nmetrics written to %s\n",
                        metrics_path.c_str());
        }
    }
    return 0;
}
