/**
 * @file
 * Drive the full timing simulator from the command line: pick a
 * workload and a memory design, replay the trace, and print the
 * metrics the paper's figures are built from.
 *
 *   $ ./examples/trace_replay                      # defaults
 *   $ ./examples/trace_replay mcf INDEP-SPLIT 2000
 *   $ ./examples/trace_replay --list
 *   $ ./examples/trace_replay mcf SPLIT-2 1000 --metrics      # JSON
 *   $ ./examples/trace_replay mcf SPLIT-2 1000 --metrics=m.json
 *
 * With --shards=N (optionally --batch=B) the same trace is instead
 * replayed through the functional sharded service (src/serve): N
 * worker-threaded ORAM shards, async submission, and serve.* metrics.
 *
 *   $ ./examples/trace_replay mcf --shards=4 --batch=8 2000 --metrics
 *
 * --fault-plan=<file-or-json> arms a fault campaign (the JSON schema
 * of docs/FAULTS.md) in either mode: every shard in sharded mode, or
 * the simulated memory system in timing mode.
 *
 *   $ ./examples/trace_replay mcf --shards=4 --fault-plan=plan.json
 *   $ ./examples/trace_replay mcf SPLIT-2 1000 \
 *         --fault-plan='{"link_drop_rate": 0.001}'
 *
 * --workload=zipfian:<theta>|hotset:<frac>|scan[:len]|mix:<file.json>
 * replaces the SPEC-profile trace with the KV workload engine
 * (src/app/kv_workload.hh): application-shaped slot traffic in BOTH
 * modes, reproducible via --workload-seed=N (default 1).
 *
 *   $ ./examples/trace_replay --workload=zipfian:0.99 SPLIT-2 2000
 *   $ ./examples/trace_replay --workload=hotset:0.1 --shards=4 \
 *         --workload-seed=7 2000
 *
 * In sharded mode --protocol=<pathoram|freecursive|independent|split|
 * indepsplit> picks each shard's backend (default pathoram) and
 * --degraded switches the fault response from retry-then-stop to
 * graceful degradation -- the combination byzantine fault plans need,
 * since lies are injected per SDIMM unit and conviction evacuates the
 * unit instead of fail-stopping:
 *
 *   $ ./examples/trace_replay mcf --shards=2 --protocol=independent \
 *         --degraded --fault-plan='{"byzantine_faults":[{"kind":
 *         "duty_cycle_liar","unit":1,"duty_cycle":0.25}],
 *         "mistrust_convict_threshold":0.12}'
 */

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "app/kv_workload.hh"
#include "core/simulator.hh"
#include "fault/fault_plan_io.hh"
#include "serve/sharded_memory.hh"
#include "trace/workload.hh"

using namespace secdimm;
using namespace secdimm::core;

namespace
{

struct DesignRow
{
    const char *name;
    DesignPoint design;
};

const DesignRow designs[] = {
    {"NonSecure", DesignPoint::NonSecure},
    {"PathORAM", DesignPoint::PathOram},
    {"Freecursive", DesignPoint::Freecursive},
    {"INDEP-2", DesignPoint::Indep2},
    {"SPLIT-2", DesignPoint::Split2},
    {"INDEP-4", DesignPoint::Indep4},
    {"SPLIT-4", DesignPoint::Split4},
    {"INDEP-SPLIT", DesignPoint::IndepSplit},
};

void
listOptions()
{
    std::printf("workloads:");
    for (const auto &p : trace::spec2006Profiles())
        std::printf(" %s", p.name.c_str());
    std::printf("\ndesigns:  ");
    for (const auto &d : designs)
        std::printf(" %s", d.name);
    std::printf("\n");
}

/**
 * Resolve a --fault-plan argument: a readable file is loaded and
 * parsed, anything else is treated as inline JSON.  Returns false
 * (with a diagnostic on stderr) if the plan does not parse.
 */
/** Resolve a --protocol argument (sharded mode's shard backend). */
bool
parseProtocol(const char *name, SecureMemorySystem::Protocol *out)
{
    using Protocol = SecureMemorySystem::Protocol;
    if (std::strcmp(name, "pathoram") == 0)
        *out = Protocol::PathOram;
    else if (std::strcmp(name, "freecursive") == 0)
        *out = Protocol::Freecursive;
    else if (std::strcmp(name, "independent") == 0)
        *out = Protocol::Independent;
    else if (std::strcmp(name, "split") == 0)
        *out = Protocol::Split;
    else if (std::strcmp(name, "indepsplit") == 0)
        *out = Protocol::IndepSplit;
    else {
        std::fprintf(stderr,
                     "--protocol: unknown backend '%s' (expected "
                     "pathoram, freecursive, independent, split, or "
                     "indepsplit)\n",
                     name);
        return false;
    }
    return true;
}

bool
loadFaultPlan(const char *arg, fault::FaultPlan *out)
{
    std::string text = arg;
    if (std::FILE *f = std::fopen(arg, "rb")) {
        text.clear();
        char buf[4096];
        std::size_t n;
        while ((n = std::fread(buf, 1, sizeof buf, f)) > 0)
            text.append(buf, n);
        std::fclose(f);
    }
    std::string err;
    const auto plan = fault::faultPlanFromJson(text, &err);
    if (!plan.has_value()) {
        std::fprintf(stderr, "--fault-plan: %s\n", err.c_str());
        return false;
    }
    *out = *plan;
    return true;
}

/** Dump or print a metrics registry per the --metrics flags. */
int
emitMetrics(const secdimm::util::MetricsRegistry &m,
            const std::string &metrics_path)
{
    const std::string json = m.toJson();
    if (metrics_path.empty()) {
        std::printf("\n%s\n", json.c_str());
        return 0;
    }
    std::FILE *f = std::fopen(metrics_path.c_str(), "w");
    if (f == nullptr) {
        std::printf("cannot write %s\n", metrics_path.c_str());
        return 1;
    }
    std::fwrite(json.data(), 1, json.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("\nmetrics written to %s\n", metrics_path.c_str());
    return 0;
}

/** Total key population across a spec's tenants. */
std::uint64_t
kvTotalKeys(const app::KvWorkloadSpec &spec)
{
    if (spec.tenants.empty())
        return spec.keys;
    std::uint64_t total = 0;
    for (const auto &t : spec.tenants)
        total += kvTotalKeys(t);
    return total;
}

/** Multiply every (leaf) tenant's key population by @p factor. */
void
kvScaleKeys(app::KvWorkloadSpec &spec, std::uint64_t factor)
{
    spec.keys *= factor;
    for (auto &t : spec.tenants)
        kvScaleKeys(t, factor);
}

/**
 * Functional sharded replay: the workload's LLC-miss stream is
 * submitted asynchronously to a ShardedSecureMemory, exercising the
 * multi-threaded frontend end to end.
 */
int
replaySharded(const std::string &label, trace::RecordSource &gen,
              std::uint64_t accesses, unsigned shards, unsigned batch,
              SecureMemorySystem::Protocol protocol,
              fault::DegradationPolicy policy,
              const fault::FaultPlan &fault_plan, bool dump_metrics,
              const std::string &metrics_path)
{
    serve::ShardedSecureMemory::Options opt;
    opt.shard.protocol = protocol;
    opt.shard.capacityBytes = 1 << 20;
    opt.shard.seed = 1;
    opt.shard.faultPlan = fault_plan;
    opt.shard.degradationPolicy = policy;
    opt.numShards = shards;
    opt.maxBatch = batch == 0 ? 1 : batch;
    serve::ShardedSecureMemory mem(opt);

    std::printf("replaying %s through the sharded service (%u shards, "
                "batch %u, %llu accesses)...\n",
                label.c_str(), shards, opt.maxBatch,
                static_cast<unsigned long long>(accesses));

    const std::uint64_t cap = mem.capacityBlocks();
    std::vector<std::future<BlockData>> reads;
    std::vector<std::future<void>> writes;
    std::uint64_t shard_failures = 0;
    // With a fault plan armed a shard can fail-stop mid-replay; its
    // requests then resolve with the typed error, which the replay
    // absorbs and counts instead of crashing.
    const auto settle = [&] {
        for (auto &f : reads) {
            try {
                f.get();
            } catch (const serve::ShardFailedError &) {
                ++shard_failures;
            }
        }
        for (auto &f : writes) {
            try {
                f.get();
            } catch (const serve::ShardFailedError &) {
                ++shard_failures;
            }
        }
        reads.clear();
        writes.clear();
    };
    const auto t0 = std::chrono::steady_clock::now();
    for (std::uint64_t i = 0; i < accesses; ++i) {
        const trace::TraceRecord rec = gen.next();
        const Addr block = (rec.addr / blockBytes) % cap;
        if (rec.write) {
            BlockData d{};
            d[0] = static_cast<std::uint8_t>(i);
            writes.push_back(mem.submitWrite(block, d));
        } else {
            reads.push_back(mem.submitRead(block));
        }
        if (reads.size() + writes.size() >= 64)
            settle();
    }
    settle();
    mem.drain();
    const auto t1 = std::chrono::steady_clock::now();
    const double secs = std::chrono::duration<double>(t1 - t0).count();

    const util::MetricsRegistry m = mem.metrics();
    std::printf("\naccesses submitted:       %llu\n",
                static_cast<unsigned long long>(accesses));
    std::printf("wall time:                %.3f s  (%.0f accesses/sec)\n",
                secs, secs > 0 ? static_cast<double>(accesses) / secs : 0.0);
    std::printf("accessORAM operations:    %llu\n",
                static_cast<unsigned long long>(
                    m.counter("core.accesses")));
    for (unsigned s = 0; s < shards; ++s) {
        const std::string p = "serve.s" + std::to_string(s);
        std::printf("shard %u: %llu requests, queue high-water %.0f, "
                    "%llu enqueue stalls, health %s\n",
                    s,
                    static_cast<unsigned long long>(
                        m.counter(p + ".accesses")),
                    m.gauge(p + ".queue_high_water"),
                    static_cast<unsigned long long>(
                        m.counter(p + ".enqueue_stalls")),
                    serve::shardHealthName(mem.shardHealth(s)));
    }
    if (fault_plan.enabled()) {
        std::uint64_t detected = 0, recovered = 0, unrecovered = 0;
        for (unsigned s = 0; s < shards; ++s) {
            const util::MetricsRegistry sm = mem.shardMetrics(s);
            detected += sm.counter("fault.detected.total");
            recovered += sm.counter("fault.recovered.total");
            unrecovered += sm.counter("fault.unrecovered.total");
        }
        std::printf("faults:                   %llu detected, "
                    "%llu recovered, %llu unrecovered, "
                    "%llu requests failed typed\n",
                    static_cast<unsigned long long>(detected),
                    static_cast<unsigned long long>(recovered),
                    static_cast<unsigned long long>(unrecovered),
                    static_cast<unsigned long long>(shard_failures));
    }
    std::printf("integrity:                %s\n",
                mem.integrityOk() ? "ok" : "FAILED");
    if (dump_metrics)
        return emitMetrics(m, metrics_path);
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        listOptions();
        return 0;
    }

    // Split --metrics[=path] / --shards=N / --batch=B off from the
    // positional arguments.
    bool dump_metrics = false;
    std::string metrics_path; // Empty = stdout.
    unsigned shards = 0;      // 0 = timing-simulator mode.
    unsigned batch = 1;
    SecureMemorySystem::Protocol protocol =
        SecureMemorySystem::Protocol::PathOram;
    fault::DegradationPolicy policy =
        fault::DegradationPolicy::RetryThenStop;
    fault::FaultPlan fault_plan = fault::FaultPlan::none();
    std::optional<app::KvWorkloadSpec> kv_spec;
    std::uint64_t workload_seed = 1;
    std::vector<const char *> pos;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics") == 0) {
            dump_metrics = true;
        } else if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
            dump_metrics = true;
            metrics_path = argv[i] + 10;
        } else if (std::strncmp(argv[i], "--shards=", 9) == 0) {
            shards = static_cast<unsigned>(
                std::strtoul(argv[i] + 9, nullptr, 0));
        } else if (std::strncmp(argv[i], "--batch=", 8) == 0) {
            batch = static_cast<unsigned>(
                std::strtoul(argv[i] + 8, nullptr, 0));
        } else if (std::strncmp(argv[i], "--protocol=", 11) == 0) {
            if (!parseProtocol(argv[i] + 11, &protocol))
                return 1;
        } else if (std::strcmp(argv[i], "--degraded") == 0) {
            policy = fault::DegradationPolicy::Degraded;
        } else if (std::strncmp(argv[i], "--fault-plan=", 13) == 0) {
            if (!loadFaultPlan(argv[i] + 13, &fault_plan))
                return 1;
        } else if (std::strncmp(argv[i], "--workload=", 11) == 0) {
            std::string err;
            kv_spec = app::parseKvWorkloadFlag(argv[i] + 11, &err);
            if (!kv_spec.has_value()) {
                std::fprintf(stderr, "--workload: %s\n", err.c_str());
                return 1;
            }
        } else if (std::strncmp(argv[i], "--workload-seed=", 16) == 0) {
            workload_seed = std::strtoull(argv[i] + 16, nullptr, 0);
        } else {
            pos.push_back(argv[i]);
        }
    }

    // With --workload= the SPEC-profile positional is dropped; the
    // remaining positionals keep their roles.
    const std::size_t base = kv_spec.has_value() ? 0 : 1;
    const std::string workload =
        !kv_spec.has_value() && !pos.empty() ? pos[0] : "mcf";
    const std::string kv_label =
        kv_spec.has_value()
            ? std::string("kv:") +
                  app::kvWorkloadKindName(kv_spec->kind) +
                  " (seed " + std::to_string(workload_seed) + ")"
            : "";

    if (shards > 0) {
        // Sharded functional replay: [workload] [accesses].
        std::uint64_t accesses = 1000;
        for (std::size_t i = base; i < pos.size(); ++i) {
            char *end = nullptr;
            const std::uint64_t v = std::strtoull(pos[i], &end, 0);
            if (end != pos[i] && *end == '\0') {
                accesses = v;
                break;
            }
        }
        if (kv_spec.has_value()) {
            app::KvBlockStream gen(*kv_spec, workload_seed,
                                   /*footprint_bytes=*/1 << 20);
            return replaySharded(kv_label, gen, accesses, shards,
                                 batch, protocol, policy, fault_plan,
                                 dump_metrics, metrics_path);
        }
        const trace::WorkloadProfile *profile =
            trace::findProfile(workload);
        if (profile == nullptr) {
            std::printf("unknown workload '%s'\n", workload.c_str());
            listOptions();
            return 1;
        }
        trace::TraceGenerator gen(*profile, 1);
        return replaySharded(profile->name, gen, accesses, shards,
                             batch, protocol, policy, fault_plan,
                             dump_metrics, metrics_path);
    }

    const std::string design_name =
        pos.size() > base ? pos[base] : "SPLIT-2";
    const std::uint64_t accesses =
        pos.size() > base + 1
            ? std::strtoull(pos[base + 1], nullptr, 0)
            : 1000;

    const trace::WorkloadProfile *profile =
        kv_spec.has_value() ? nullptr : trace::findProfile(workload);
    if (!kv_spec.has_value() && profile == nullptr) {
        std::printf("unknown workload '%s'\n", workload.c_str());
        listOptions();
        return 1;
    }
    const DesignRow *row = nullptr;
    for (const auto &d : designs) {
        if (design_name == d.name)
            row = &d;
    }
    if (row == nullptr) {
        std::printf("unknown design '%s'\n", design_name.c_str());
        listOptions();
        return 1;
    }

    SystemConfig cfg = makeConfig(row->design, 24, 7);
    cfg.faultPlan = fault_plan;
    SimLengths lens;
    lens.measureRecords = accesses;
    lens.warmupRecords = 20000;

    std::printf("replaying %s on %s (%llu measured LLC-miss records, "
                "24-level tree, 7 cached)...\n",
                kv_spec.has_value() ? kv_label.c_str()
                                    : workload.c_str(),
                row->name, static_cast<unsigned long long>(accesses));

    SimResult r;
    if (kv_spec.has_value()) {
        // Application-shaped traffic through the timing simulator.
        // The records pass the Table II cache hierarchy first, so a
        // key population whose slots fit inside the 2 MB LLC never
        // reaches the ORAM at all; scale the population until the
        // working set spills (the shapes -- zipf skew, hot fractions,
        // scan runs -- are population-relative, so they survive).
        const std::uint64_t slot_bytes = 4 * 64;
        const std::uint64_t spill_keys = (8ULL << 20) / slot_bytes;
        const std::uint64_t total = kvTotalKeys(*kv_spec);
        if (total < spill_keys) {
            kvScaleKeys(*kv_spec,
                        (spill_keys + total - 1) / total);
            std::printf("(key population scaled %llu -> %llu so the "
                        "working set spills the 2 MB LLC)\n",
                        static_cast<unsigned long long>(total),
                        static_cast<unsigned long long>(
                            kvTotalKeys(*kv_spec)));
        }
        app::KvBlockStream gen(*kv_spec, workload_seed,
                               /*footprint_bytes=*/1 << 26);
        r = runWorkloadFromSource(cfg, gen, lens, 1);
    } else {
        r = runWorkload(cfg, *profile, lens, 1);
    }

    std::printf("\ncycles (memory clock):    %llu\n",
                static_cast<unsigned long long>(r.core.cycles));
    std::printf("instructions retired:     %llu (IPC %.3f)\n",
                static_cast<unsigned long long>(r.core.instructions),
                r.core.ipc());
    std::printf("L1 misses replayed:       %llu\n",
                static_cast<unsigned long long>(r.core.l1Misses));
    std::printf("LLC misses (to memory):   %llu\n",
                static_cast<unsigned long long>(r.core.llcMisses));
    std::printf("memory cycles per miss:   %.0f\n", r.cyclesPerMiss());
    if (r.accessOrams) {
        std::printf("accessORAM operations:    %llu (%.2f per miss)\n",
                    static_cast<unsigned long long>(r.accessOrams),
                    r.avgOramsPerMiss);
    }
    std::printf("off-DIMM channel bursts:  %llu\n",
                static_cast<unsigned long long>(r.offDimmLines));
    if (r.probes) {
        std::printf("PROBE polls:              %llu\n",
                    static_cast<unsigned long long>(r.probes));
    }
    std::printf("memory energy:            %.1f uJ  (act/pre %.1f, "
                "rd/wr %.1f, io %.1f, bkgd %.1f, refresh %.1f)\n",
                r.energy.totalNj() / 1000.0,
                r.energy.actPreNj / 1000.0, r.energy.rdWrNj / 1000.0,
                r.energy.ioNj / 1000.0, r.energy.backgroundNj / 1000.0,
                r.energy.refreshNj / 1000.0);
    if (fault_plan.enabled()) {
        std::printf("faults:                   %llu detected, "
                    "%llu recovered, %llu unrecovered\n",
                    static_cast<unsigned long long>(
                        r.metrics.counter("fault.detected.total")),
                    static_cast<unsigned long long>(
                        r.metrics.counter("fault.recovered.total")),
                    static_cast<unsigned long long>(
                        r.metrics.counter("fault.unrecovered.total")));
    }

    if (dump_metrics) {
        const std::string json = r.metrics.toJson();
        if (metrics_path.empty()) {
            std::printf("\n%s\n", json.c_str());
        } else {
            std::FILE *f = std::fopen(metrics_path.c_str(), "w");
            if (f == nullptr) {
                std::printf("cannot write %s\n", metrics_path.c_str());
                return 1;
            }
            std::fwrite(json.data(), 1, json.size(), f);
            std::fputc('\n', f);
            std::fclose(f);
            std::printf("\nmetrics written to %s\n",
                        metrics_path.c_str());
        }
    }
    return 0;
}
