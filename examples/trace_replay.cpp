/**
 * @file
 * Drive the full timing simulator from the command line: pick a
 * workload and a memory design, replay the trace, and print the
 * metrics the paper's figures are built from.
 *
 *   $ ./examples/trace_replay                      # defaults
 *   $ ./examples/trace_replay mcf INDEP-SPLIT 2000
 *   $ ./examples/trace_replay --list
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/simulator.hh"

using namespace secdimm;
using namespace secdimm::core;

namespace
{

struct DesignRow
{
    const char *name;
    DesignPoint design;
};

const DesignRow designs[] = {
    {"NonSecure", DesignPoint::NonSecure},
    {"Freecursive", DesignPoint::Freecursive},
    {"INDEP-2", DesignPoint::Indep2},
    {"SPLIT-2", DesignPoint::Split2},
    {"INDEP-4", DesignPoint::Indep4},
    {"SPLIT-4", DesignPoint::Split4},
    {"INDEP-SPLIT", DesignPoint::IndepSplit},
};

void
listOptions()
{
    std::printf("workloads:");
    for (const auto &p : trace::spec2006Profiles())
        std::printf(" %s", p.name.c_str());
    std::printf("\ndesigns:  ");
    for (const auto &d : designs)
        std::printf(" %s", d.name);
    std::printf("\n");
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc > 1 && std::strcmp(argv[1], "--list") == 0) {
        listOptions();
        return 0;
    }

    const std::string workload = argc > 1 ? argv[1] : "mcf";
    const std::string design_name = argc > 2 ? argv[2] : "SPLIT-2";
    const std::uint64_t accesses =
        argc > 3 ? std::strtoull(argv[3], nullptr, 0) : 1000;

    const trace::WorkloadProfile *profile =
        trace::findProfile(workload);
    if (profile == nullptr) {
        std::printf("unknown workload '%s'\n", workload.c_str());
        listOptions();
        return 1;
    }
    const DesignRow *row = nullptr;
    for (const auto &d : designs) {
        if (design_name == d.name)
            row = &d;
    }
    if (row == nullptr) {
        std::printf("unknown design '%s'\n", design_name.c_str());
        listOptions();
        return 1;
    }

    SystemConfig cfg = makeConfig(row->design, 24, 7);
    SimLengths lens;
    lens.measureRecords = accesses;
    lens.warmupRecords = 20000;

    std::printf("replaying %s on %s (%llu measured LLC-miss records, "
                "24-level tree, 7 cached)...\n",
                workload.c_str(), row->name,
                static_cast<unsigned long long>(accesses));

    const SimResult r = runWorkload(cfg, *profile, lens, 1);

    std::printf("\ncycles (memory clock):    %llu\n",
                static_cast<unsigned long long>(r.core.cycles));
    std::printf("instructions retired:     %llu (IPC %.3f)\n",
                static_cast<unsigned long long>(r.core.instructions),
                r.core.ipc());
    std::printf("L1 misses replayed:       %llu\n",
                static_cast<unsigned long long>(r.core.l1Misses));
    std::printf("LLC misses (to memory):   %llu\n",
                static_cast<unsigned long long>(r.core.llcMisses));
    std::printf("memory cycles per miss:   %.0f\n", r.cyclesPerMiss());
    if (r.accessOrams) {
        std::printf("accessORAM operations:    %llu (%.2f per miss)\n",
                    static_cast<unsigned long long>(r.accessOrams),
                    r.avgOramsPerMiss);
    }
    std::printf("off-DIMM channel bursts:  %llu\n",
                static_cast<unsigned long long>(r.offDimmLines));
    if (r.probes) {
        std::printf("PROBE polls:              %llu\n",
                    static_cast<unsigned long long>(r.probes));
    }
    std::printf("memory energy:            %.1f uJ  (act/pre %.1f, "
                "rd/wr %.1f, io %.1f, bkgd %.1f, refresh %.1f)\n",
                r.energy.totalNj() / 1000.0,
                r.energy.actPreNj / 1000.0, r.energy.rdWrNj / 1000.0,
                r.energy.ioNj / 1000.0, r.energy.backgroundNj / 1000.0,
                r.energy.refreshNj / 1000.0);
    return 0;
}
