/**
 * @file
 * Quickstart: create an oblivious memory, write and read bytes, and
 * inspect the protocol's work.  Start here.
 *
 *   $ ./examples/quickstart
 */

#include <cstdio>
#include <cstring>
#include <string>

#include "core/secure_memory_system.hh"

using secdimm::core::SecureMemorySystem;

int
main()
{
    // 1 MB of oblivious memory behind the SDIMM Split protocol with
    // two (simulated) secure DIMMs.
    SecureMemorySystem::Options opt;
    opt.protocol = SecureMemorySystem::Protocol::Split;
    opt.capacityBytes = 1 << 20;
    opt.numSdimms = 2;
    opt.seed = 2026;
    SecureMemorySystem mem(opt);

    std::printf("capacity: %llu bytes (%s protocol, %u SDIMMs)\n",
                static_cast<unsigned long long>(mem.capacityBytes()),
                "Split", opt.numSdimms);

    // Byte-granular writes work across block boundaries.
    const std::string secret =
        "attackers on the memory bus learn nothing from this";
    mem.write(4000, secret.data(), secret.size());

    std::string round_trip(secret.size(), '\0');
    mem.read(4000, round_trip.data(), round_trip.size());
    std::printf("round trip: \"%s\"\n", round_trip.c_str());
    if (round_trip != secret) {
        std::printf("MISMATCH!\n");
        return 1;
    }

    // Block-granular API.
    secdimm::BlockData block{};
    std::memcpy(block.data(), "block-level API", 15);
    mem.writeBlock(7, block);
    const secdimm::BlockData got = mem.readBlock(7);
    std::printf("block 7: \"%.15s\"\n",
                reinterpret_cast<const char *>(got.data()));

    // Every access ran a full accessORAM under the hood: path reads,
    // re-encryption, MAC checks, eviction.
    std::printf("accessORAM operations performed: %llu\n",
                static_cast<unsigned long long>(mem.accessCount()));
    std::printf("integrity (MACs + freshness counters): %s\n",
                mem.integrityOk() ? "all verified" : "VIOLATED");
    return 0;
}
