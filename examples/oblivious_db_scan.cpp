/**
 * @file
 * The paper's motivating workload class: an in-memory database (it
 * cites Oracle TimesTen / SAP HANA) whose query behaviour must not
 * leak to an operator probing the DIMMs.  This example stores a small
 * employee table in oblivious memory and runs two classes of queries:
 *
 *  - full-table aggregate scans (every row touched), and
 *  - selective point lookups driven by a secret predicate.
 *
 * With plain DRAM the addresses of the touched rows reveal exactly
 * which employees matched; over the Split ORAM the two query classes
 * generate bus traffic of identical shape -- and we additionally
 * exercise a fixed-work ("padded") scan idiom so even the *number* of
 * accesses is identical for the selective query.
 *
 *   $ ./examples/oblivious_db_scan
 */

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/secure_memory_system.hh"

using namespace secdimm;
using secdimm::core::SecureMemorySystem;

namespace
{

/** One table row, sized to an ORAM block. */
struct EmployeeRow
{
    std::uint32_t id;
    char name[28];
    std::uint32_t department; // 0..3
    std::uint32_t salary;
    std::uint8_t pad[24];
};
static_assert(sizeof(EmployeeRow) == blockBytes);

class ObliviousTable
{
  public:
    explicit ObliviousTable(std::uint64_t rows)
        : rows_(rows), mem_(options(rows))
    {
    }

    void
    insert(std::uint64_t idx, const EmployeeRow &row)
    {
        BlockData b{};
        std::memcpy(b.data(), &row, sizeof(row));
        mem_.writeBlock(idx, b);
    }

    EmployeeRow
    load(std::uint64_t idx)
    {
        EmployeeRow row;
        const BlockData b = mem_.readBlock(idx);
        std::memcpy(&row, b.data(), sizeof(row));
        return row;
    }

    std::uint64_t rows() const { return rows_; }
    std::uint64_t accesses() const { return mem_.accessCount(); }
    bool integrityOk() const { return mem_.integrityOk(); }

  private:
    static core::SecureMemorySystem::Options
    options(std::uint64_t rows)
    {
        core::SecureMemorySystem::Options o;
        o.protocol = SecureMemorySystem::Protocol::Split;
        o.capacityBytes = rows * blockBytes;
        o.numSdimms = 2;
        o.seed = 1234;
        return o;
    }

    std::uint64_t rows_;
    core::SecureMemorySystem mem_;
};

} // namespace

int
main()
{
    constexpr std::uint64_t kRows = 128;
    ObliviousTable table(kRows);

    // Populate.
    for (std::uint64_t i = 0; i < kRows; ++i) {
        EmployeeRow row{};
        row.id = static_cast<std::uint32_t>(1000 + i);
        std::snprintf(row.name, sizeof(row.name), "employee-%03llu",
                      static_cast<unsigned long long>(i));
        row.department = static_cast<std::uint32_t>(i % 4);
        row.salary = static_cast<std::uint32_t>(50000 + 137 * i);
        table.insert(i, row);
    }
    std::printf("loaded %llu rows into Split-ORAM memory "
                "(%llu accessORAMs)\n\n",
                static_cast<unsigned long long>(kRows),
                static_cast<unsigned long long>(table.accesses()));

    // Query 1: aggregate scan -- average salary per department.
    const std::uint64_t before_scan = table.accesses();
    std::uint64_t sum[4] = {0, 0, 0, 0}, cnt[4] = {0, 0, 0, 0};
    for (std::uint64_t i = 0; i < kRows; ++i) {
        const EmployeeRow row = table.load(i);
        sum[row.department] += row.salary;
        ++cnt[row.department];
    }
    std::printf("Q1: SELECT dept, AVG(salary) GROUP BY dept\n");
    for (int d = 0; d < 4; ++d)
        std::printf("    dept %d: avg %llu\n", d,
                    static_cast<unsigned long long>(sum[d] / cnt[d]));
    std::printf("    accessORAMs: %llu\n\n",
                static_cast<unsigned long long>(table.accesses() -
                                                before_scan));

    // Query 2: a SECRET selective predicate, run as a fixed-work
    // scan: every row is read regardless of the match, so both the
    // addresses AND the access count are independent of the secret.
    const std::uint32_t secret_department = 2;
    const std::uint32_t secret_threshold = 58000;
    const std::uint64_t before_select = table.accesses();
    std::vector<std::string> matches;
    for (std::uint64_t i = 0; i < kRows; ++i) {
        const EmployeeRow row = table.load(i);
        const bool hit = row.department == secret_department &&
                         row.salary > secret_threshold;
        if (hit)
            matches.emplace_back(row.name);
    }
    std::printf("Q2: secret predicate (dept == ?, salary > ?) as a "
                "fixed-work scan\n");
    std::printf("    matches: %zu rows (first: %s)\n", matches.size(),
                matches.empty() ? "-" : matches.front().c_str());
    std::printf("    accessORAMs: %llu -- identical to Q1's, and the "
                "path sequence is\n    freshly randomized, so the bus "
                "reveals neither predicate nor matches\n\n",
                static_cast<unsigned long long>(table.accesses() -
                                                before_select));

    std::printf("integrity after all queries: %s\n",
                table.integrityOk() ? "verified" : "VIOLATED");
    return 0;
}
