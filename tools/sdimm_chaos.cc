/**
 * @file
 * Chaos-campaign CLI: composes transient, permanent, and CORRELATED
 * faults against a multi-threaded ShardedSecureMemory under client
 * load, then measures that the wreckage stayed contained:
 *
 *  - ledger identity on every live shard (detected == recovered +
 *    unrecovered, held exactly through nested evacuations);
 *  - bit-exact data survival of every block owned by a live shard
 *    (evacuation off dead/retired units must not lose a byte);
 *  - typed degradation of the dead shard (every request resolves
 *    serve::ShardFailedError; no hang, no fabricated zeros);
 *  - serve.shard_health gauges consistent with what actually died;
 *  - nested-recovery evidence (a correlated burst detected INSIDE a
 *    running evacuation), proactive retirement evidence, and the
 *    zero-survivor FailStop with its distinct ledger entry;
 *  - post-chaos indistinguishability: deepCompareTraces over two
 *    secret-differing runs with the SAME (public) fault plan,
 *    compareSchedules over two secret-differing sharded runs, and a
 *    zero-MI leak_meter measurement with chaos armed;
 *  - byzantine campaigns (unit designs): each lying-unit archetype --
 *    persistent corruptor, 25%-duty liar, sub-threshold liar,
 *    lost-write ACKer / group equivocator -- driven against the
 *    mistrust scorer, asserting conviction (or principled restraint),
 *    exact ledger identity, bounded data loss, and post-conviction
 *    deep-trace + zero-MI indistinguishability;
 *  - KV application campaign: concurrent zipfian clients drive the
 *    oblivious KV store (src/app) while bursts, retirements, and a
 *    byzantine unit rage underneath (no dead shard -- KV slots span
 *    all shards), then post-chaos read-your-writes, store integrity,
 *    and secret-independence of the schedule (and, for tree
 *    protocols, per-shard deep traces) are gated.
 *
 * Usage:
 *   sdimm_chaos [--design path|freecursive|independent|split|
 *                 indepsplit|all]
 *               [--seed S] [--seeds N] [--requests N] [--threads T]
 *               [--shards N] [--out FILE] [--check]
 *
 * `--check` turns the verdict into an exit status for CI: 0 = every
 * campaign and post-chaos expectation held, 1 = violated, 2 = usage
 * error.  `--seeds N` runs the campaign phase at seeds S..S+N-1 (the
 * post-chaos phase runs once, at S).
 */

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "app/kv_store.hh"
#include "app/kv_workload.hh"
#include "core/secure_memory_system.hh"
#include "fault/fault_injector.hh"
#include "fault/fault_plan_io.hh"
#include "sdimm/indep_split_oram.hh"
#include "sdimm/independent_oram.hh"
#include "sdimm/split_oram.hh"
#include "serve/sharded_memory.hh"
#include "util/rng.hh"
#include "verify/leak_meter.hh"
#include "verify/trace_checker.hh"

namespace
{

using namespace secdimm;
using Protocol = core::SecureMemorySystem::Protocol;

struct DesignSpec
{
    const char *cli;
    const char *name;
    Protocol protocol;
    /** Consumes unitDead(): correlated death / retirement / watchdog
     *  quarantine apply (Independent and IndepSplit). */
    bool unitDesign;
    /** leak_meter expectation (the PLB locality channel). */
    bool expectLeak;
};

const std::vector<DesignSpec> kDesigns = {
    {"path", "PathOram", Protocol::PathOram, false, false},
    {"freecursive", "Freecursive", Protocol::Freecursive, false, true},
    {"independent", "Independent", Protocol::Independent, true, false},
    {"split", "Split", Protocol::Split, false, false},
    {"indepsplit", "IndepSplit", Protocol::IndepSplit, true, false},
};

/** SDIMM/group count inside each unit-design shard: big enough that a
 *  2-unit correlated burst leaves survivors to evacuate onto. */
constexpr unsigned kUnitsPerShard = 4;

/* ------------------------------------------------------------------ */
/* Per-shard chaos plans                                               */
/* ------------------------------------------------------------------ */

/** Mild uniform transients: recoverable under the default retry
 *  budget, so they exercise the ledger without killing anything. */
fault::FaultPlan
transientPlan(std::uint64_t seed)
{
    return fault::FaultPlan::uniform(0.002, seed);
}

/** Shard 1 (unit designs): units 1 and 2 die as one simultaneous
 *  burst -- the second death is discovered INSIDE the evacuation of
 *  the first (nested recovery). */
fault::FaultPlan
burstPlan(std::uint64_t seed)
{
    fault::FaultPlan p =
        fault::FaultPlan::correlatedDeath({1, 2}, 64, 0, seed);
    p.linkCorruptRate = 0.002;
    p.linkDropRate = 0.002;
    return p;
}

/** Shard 2 (unit designs): unit 1 limps (1000 cycles of tax per op)
 *  and the retirement policy evacuates it proactively. */
fault::FaultPlan
retirePlan(std::uint64_t seed)
{
    return fault::FaultPlan::proactiveRetire(1, 1000, 500, seed);
}

/** The dead shard.  Unit designs: EVERY unit dies in one burst, so
 *  the last handleDead lands on zero survivors and fail-stops with
 *  the distinct ledger entry.  Flat designs: saturating transients
 *  with no retry budget, so the first fault goes unrecovered. */
fault::FaultPlan
deadShardPlan(bool unit_design, std::uint64_t seed)
{
    if (unit_design) {
        std::vector<unsigned> all;
        for (unsigned u = 0; u < kUnitsPerShard; ++u)
            all.push_back(u);
        return fault::FaultPlan::correlatedDeath(all, 32, 0, seed);
    }
    fault::FaultPlan p = fault::FaultPlan::uniform(0.25, seed);
    p.maxRetries = 0;
    return p;
}

/** One plan per shard; the LAST shard gets the dead-shard plan. */
std::vector<fault::FaultPlan>
campaignPlans(const DesignSpec &spec, unsigned shards,
              std::uint64_t seed)
{
    std::vector<fault::FaultPlan> plans;
    for (unsigned s = 0; s < shards; ++s) {
        const std::uint64_t shard_seed = seed * 1000003 + s;
        if (s + 1 == shards)
            plans.push_back(deadShardPlan(spec.unitDesign, shard_seed));
        else if (spec.unitDesign && s == 1)
            plans.push_back(burstPlan(shard_seed));
        else if (spec.unitDesign && s == 2)
            plans.push_back(retirePlan(shard_seed));
        else
            plans.push_back(transientPlan(shard_seed));
    }
    return plans;
}

serve::ShardedSecureMemory::Options
campaignOptions(const DesignSpec &spec, unsigned shards,
                std::uint64_t seed)
{
    serve::ShardedSecureMemory::Options o;
    o.shard.protocol = spec.protocol;
    o.shard.capacityBytes = 1 << 18; // 4096 blocks across the service.
    o.shard.numSdimms = spec.unitDesign ? kUnitsPerShard : 2;
    o.shard.stashCapacity = 200;
    o.shard.seed = seed;
    o.shard.degradationPolicy = spec.unitDesign
                                    ? fault::DegradationPolicy::Degraded
                                    : fault::DegradationPolicy::RetryThenStop;
    o.numShards = shards;
    o.shardFaultPlans = campaignPlans(spec, shards, seed);
    return o;
}

/* ------------------------------------------------------------------ */
/* Phase A: the sharded chaos campaign                                 */
/* ------------------------------------------------------------------ */

BlockData
stampBlock(std::uint64_t block, std::uint64_t seed)
{
    BlockData d{};
    const std::uint64_t tag = block * 0x9e3779b97f4a7c15ull + seed;
    for (std::size_t i = 0; i < blockBytes; ++i)
        d[i] = static_cast<std::uint8_t>(
            (tag >> ((i % 8) * 8)) ^ (0x5a + i));
    return d;
}

struct ShardOutcome
{
    unsigned shard = 0;
    serve::ShardHealth health = serve::ShardHealth::Healthy;
    std::uint64_t errors = 0; ///< ShardFailedError count seen by clients.
    std::uint64_t detected = 0;
    std::uint64_t recovered = 0;
    std::uint64_t unrecovered = 0;
    std::uint64_t nestedEvacuations = 0;
    std::uint64_t retiredUnits = 0;
    std::uint64_t zeroSurvivorFailStops = 0;
    bool ledgerOk = false;
};

struct CampaignResult
{
    std::uint64_t seed = 0;
    std::vector<ShardOutcome> shards;
    std::uint64_t verifiedBlocks = 0;
    std::uint64_t skippedDeadBlocks = 0;
    std::uint64_t corruptBlocks = 0;
    bool dataOk = false;
    bool typedErrorsOk = false;
    bool healthOk = false;
    bool ledgerOk = false;
    bool nestedOk = false;
    bool retiredOk = false;
    bool zeroSurvivorOk = false;
    bool pass = false;
};

/** Counter prefix of the unit-protocol metrics inside one shard. */
std::string
unitMetricPrefix(const DesignSpec &spec)
{
    return spec.protocol == Protocol::IndepSplit ? "sdimm.indep_split"
                                                 : "sdimm";
}

CampaignResult
runCampaign(const DesignSpec &spec, std::uint64_t seed,
            std::uint64_t requests, unsigned threads, unsigned shards)
{
    CampaignResult r;
    r.seed = seed;

    serve::ShardedSecureMemory mem(campaignOptions(spec, shards, seed));
    const std::uint64_t cap = mem.capacityBlocks();
    const std::uint64_t stamped = std::min<std::uint64_t>(requests, cap);

    // T clients each write a contiguous chunk of the stamped range;
    // consecutive blocks alternate shards, so every client hits every
    // shard (including the one that dies under it).
    std::vector<std::vector<std::uint64_t>> errs(
        threads, std::vector<std::uint64_t>(shards, 0));
    const std::uint64_t per_thread = (requests + threads - 1) / threads;
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
            const std::uint64_t lo = t * per_thread;
            const std::uint64_t hi =
                std::min<std::uint64_t>(requests, lo + per_thread);
            for (std::uint64_t i = lo; i < hi; ++i) {
                const std::uint64_t block = i % cap;
                try {
                    mem.writeBlock(block, stampBlock(block, seed));
                } catch (const serve::ShardFailedError &e) {
                    ++errs[t][e.shard()];
                }
            }
        });
    }
    for (std::thread &c : clients)
        c.join();
    mem.drain();

    // Survival: every stamped block owned by a live shard reads back
    // bit-exact (nested evacuation and retirement must not lose data).
    for (std::uint64_t b = 0; b < stamped; ++b) {
        const unsigned shard = mem.shardOf(b);
        if (mem.shardHealth(shard) == serve::ShardHealth::Failed) {
            ++r.skippedDeadBlocks;
            continue;
        }
        try {
            if (mem.readBlock(b) != stampBlock(b, seed)) {
                ++r.corruptBlocks;
                std::fprintf(stderr,
                             "corrupt block %llu (shard %u)\n",
                             static_cast<unsigned long long>(b), shard);
            }
            ++r.verifiedBlocks;
        } catch (const serve::ShardFailedError &e) {
            ++errs[0][e.shard()]; // Died between write and verify.
            ++r.skippedDeadBlocks;
        }
    }

    const std::string unit_prefix = unitMetricPrefix(spec);
    for (unsigned s = 0; s < shards; ++s) {
        ShardOutcome o;
        o.shard = s;
        o.health = mem.shardHealth(s);
        for (unsigned t = 0; t < threads; ++t)
            o.errors += errs[t][s];
        const util::MetricsRegistry sm = mem.shardMetrics(s);
        o.detected = sm.counter("fault.detected.total");
        o.recovered = sm.counter("fault.recovered.total");
        o.unrecovered = sm.counter("fault.unrecovered.total");
        o.zeroSurvivorFailStops =
            sm.counter("fault.zero_survivor_failstops");
        o.nestedEvacuations =
            sm.counter(unit_prefix + ".nested_evacuations");
        o.retiredUnits = sm.counter(unit_prefix + ".retired_units");
        o.ledgerOk = o.detected == o.recovered + o.unrecovered;
        r.shards.push_back(o);
    }

    const unsigned dead = shards - 1;
    r.dataOk = r.corruptBlocks == 0 && r.verifiedBlocks > 0;
    r.typedErrorsOk = r.shards[dead].errors > 0;
    for (unsigned s = 0; s + 1 < shards; ++s)
        r.typedErrorsOk = r.typedErrorsOk && r.shards[s].errors == 0;
    r.ledgerOk = true;
    for (const ShardOutcome &o : r.shards)
        r.ledgerOk = r.ledgerOk && o.ledgerOk;

    const util::MetricsRegistry all = mem.metrics();
    const double healthy = all.gauge("serve.shard_health.healthy");
    const double degraded = all.gauge("serve.shard_health.degraded");
    const double failed = all.gauge("serve.shard_health.failed");
    r.healthOk = failed >= 1.0 &&
                 healthy + degraded + failed ==
                     static_cast<double>(shards) &&
                 r.shards[dead].health == serve::ShardHealth::Failed;

    if (spec.unitDesign) {
        r.nestedOk = r.shards[1].nestedEvacuations > 0;
        r.retiredOk = r.shards[2].retiredUnits > 0;
        r.zeroSurvivorOk = r.shards[dead].zeroSurvivorFailStops > 0;
    } else {
        // Flat designs have no evacuable units; the dead shard must
        // still fail via the unrecovered-transient path.
        r.nestedOk = true;
        r.retiredOk = true;
        r.zeroSurvivorOk = r.shards[dead].unrecovered > 0;
    }
    r.pass = r.dataOk && r.typedErrorsOk && r.healthOk && r.ledgerOk &&
             r.nestedOk && r.retiredOk && r.zeroSurvivorOk;
    return r;
}

/* ------------------------------------------------------------------ */
/* Phase A2: byzantine campaigns (unit designs only)                   */
/* ------------------------------------------------------------------ */

/**
 * One scripted byzantine adversary against a single unit-design ORAM:
 * the plan arms a lying unit plus the mistrust scorer, the workload
 * stamps then re-reads a block range, and the checks assert the
 * defense outcome -- conviction (or, for sub-threshold duty cycles,
 * NO conviction), exact ledger identity, and bit-exact survival of
 * everything the adversary did not irrecoverably destroy.
 */
struct ByzCase
{
    const char *name;
    fault::FaultPlan plan;
    /** Exactly one conviction expected (false: exactly zero). */
    bool expectConvict = true;
    /** Lost-write adversary: data loss is real but must be bounded by
     *  (and attributed as) the detected ByzantineLostWrite count. */
    bool lossy = false;
    /** Read passes over the stamped range before the verify pass. */
    unsigned passes = 6;
    /** Keep reading until at least this many accesses ran (the
     *  fault-free soak wants >= 10k to show zero false convictions). */
    std::uint64_t minAccesses = 0;
};

/** The byzantine archetypes of docs/FAULTS.md, bracketing the
 *  conviction threshold: duty 1.0 and 0.25 must convict, duty 0.002
 *  must stay below the hysteresis (isolated lies decay before the
 *  streak closes), and a fault-free run under the armed scorer must
 *  never convict anyone. */
std::vector<ByzCase>
byzCases(const DesignSpec &spec, std::uint64_t seed)
{
    std::vector<ByzCase> cases;
    cases.push_back({"corruptor",
                     fault::FaultPlan::byzantineCorruptor(1, 16, seed),
                     true, false, 6, 0});
    cases.push_back({"liar25",
                     fault::FaultPlan::byzantineLiar(1, 0.25, 16, seed),
                     true, false, 6, 0});
    cases.push_back({"liar_subthreshold",
                     fault::FaultPlan::byzantineLiar(1, 0.002, 16, seed),
                     false, false, 3, 0});
    if (spec.protocol == Protocol::Independent)
        cases.push_back(
            {"lost_write",
             fault::FaultPlan::byzantine(fault::ByzantineFaultKind::LostWrite,
                                         1, 0.5, 16, 0.12, seed),
             true, true, 6, 0});
    else
        cases.push_back(
            {"equivocator",
             fault::FaultPlan::byzantine(
                 fault::ByzantineFaultKind::Equivocate, 1, 1.0, 16, 0.12,
                 seed),
             true, false, 6, 0});
    fault::FaultPlan armed;
    armed.mistrustConvictThreshold = 0.12;
    armed.seed = seed;
    cases.push_back({"fault_free_armed", armed, false, false, 3, 10000});
    return cases;
}

struct ByzOutcome
{
    std::string name;
    std::uint64_t accesses = 0;
    std::uint64_t convictions = 0;
    std::uint64_t detected = 0;
    std::uint64_t recovered = 0;
    std::uint64_t unrecovered = 0;
    std::uint64_t lostWrites = 0; ///< detected ByzantineLostWrite.
    std::uint64_t corruptBlocks = 0;
    bool convictOk = false;
    bool ledgerOk = false;
    bool dataOk = false;
    bool pass = false;
};

template <typename Oram>
ByzOutcome
driveByzCase(Oram &o, fault::FaultInjector &inj, const ByzCase &bc,
             std::uint64_t seed)
{
    ByzOutcome r;
    r.name = bc.name;
    const std::uint64_t n =
        std::min<std::uint64_t>(o.capacityBlocks() / 2, 256);
    for (std::uint64_t a = 0; a < n; ++a) {
        const BlockData d = stampBlock(a, seed);
        o.access(a, oram::OramOp::Write, &d);
        ++r.accesses;
    }
    // Read passes: enough touches of the lying unit for the mistrust
    // EWMA to cross (or demonstrably NOT cross) the hysteresis.
    unsigned pass = 0;
    while (pass < bc.passes || r.accesses < bc.minAccesses) {
        for (std::uint64_t a = 0; a < n; ++a) {
            o.access(a, oram::OramOp::Read, nullptr);
            ++r.accesses;
        }
        if (++pass > 64)
            break;
    }
    for (std::uint64_t a = 0; a < n; ++a) {
        if (o.access(a, oram::OramOp::Read, nullptr) !=
            stampBlock(a, seed))
            ++r.corruptBlocks;
        ++r.accesses;
    }

    r.convictions = inj.convictedUnits();
    r.detected = inj.detectedTotal();
    r.recovered = inj.recoveredTotal();
    r.unrecovered = inj.unrecoveredTotal();
    r.lostWrites = inj.detected(fault::FaultKind::ByzantineLostWrite);
    r.convictOk = bc.expectConvict ? r.convictions == 1
                                   : r.convictions == 0;
    r.ledgerOk = r.detected == r.recovered + r.unrecovered;
    if (bc.lossy) {
        // Dropped payloads are gone, but every loss must be detected
        // at read-back, attributed to the culprit, and bounded.
        r.dataOk = r.lostWrites > 0 &&
                   r.corruptBlocks <= r.lostWrites &&
                   r.unrecovered == r.lostWrites;
    } else {
        r.dataOk = r.corruptBlocks == 0 && r.unrecovered == 0;
    }
    if (bc.plan.byzantineFaults.empty())
        r.dataOk = r.dataOk && r.detected == 0;
    r.pass = r.convictOk && r.ledgerOk && r.dataOk && !o.failedStop();
    return r;
}

std::vector<ByzOutcome>
runByzantine(const DesignSpec &spec, std::uint64_t seed)
{
    std::vector<ByzOutcome> out;
    for (const ByzCase &bc : byzCases(spec, seed)) {
        fault::FaultInjector inj(bc.plan);
        if (spec.protocol == Protocol::Independent) {
            sdimm::IndependentOram::Params p;
            p.perSdimm.levels = 6;
            p.perSdimm.stashCapacity = 200;
            p.numSdimms = kUnitsPerShard;
            sdimm::IndependentOram o(p, seed);
            o.setFaultInjector(&inj,
                               fault::DegradationPolicy::Degraded);
            out.push_back(driveByzCase(o, inj, bc, seed));
        } else {
            sdimm::IndepSplitOram::Params p;
            p.perGroupTree.levels = 6;
            p.perGroupTree.stashCapacity = 200;
            p.groups = kUnitsPerShard;
            p.slicesPerGroup = 2;
            sdimm::IndepSplitOram o(p, seed);
            o.setFaultInjector(&inj,
                               fault::DegradationPolicy::Degraded);
            out.push_back(driveByzCase(o, inj, bc, seed));
        }
    }
    return out;
}

/* ------------------------------------------------------------------ */
/* Phase B: post-chaos indistinguishability                            */
/* ------------------------------------------------------------------ */

std::vector<verify::TraceEvent>
clockedTrace(std::vector<verify::TraceEvent> t)
{
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i].at = 10 * i;
    return t;
}

/** One single-system run with the (public) chaos plan armed; the
 *  secret is WHICH addresses the workload touches. */
std::vector<verify::TraceEvent>
deepRun(const DesignSpec &spec, std::uint64_t secret_seed,
        std::uint64_t plan_seed, std::size_t accesses)
{
    if (spec.protocol == Protocol::PathOram ||
        spec.protocol == Protocol::Freecursive) {
        core::SecureMemorySystem::Options o;
        o.protocol = spec.protocol;
        o.capacityBytes = 1 << 18;
        o.seed = plan_seed;
        o.faultPlan = fault::FaultPlan::uniform(0.01, plan_seed);
        core::SecureMemorySystem mem(o);
        verify::ChannelObserver obs;
        mem.attachObserver(obs);
        Rng rng(secret_seed);
        const std::uint64_t cap = mem.capacityBytes() / blockBytes;
        for (std::size_t i = 0; i < accesses; ++i)
            mem.readBlock(rng.nextBelow(cap));
        return clockedTrace(obs.events());
    }
    if (spec.protocol == Protocol::Independent) {
        sdimm::IndependentOram::Params p;
        p.perSdimm.levels = 6;
        p.perSdimm.stashCapacity = 200;
        p.numSdimms = kUnitsPerShard;
        fault::FaultPlan plan = burstPlan(plan_seed);
        plan.correlatedFailures[0].atAccess = accesses / 4;
        fault::FaultInjector inj(plan);
        sdimm::IndependentOram o(p, plan_seed);
        o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);
        Rng rng(secret_seed);
        for (std::size_t i = 0; i < accesses; ++i)
            o.access(rng.nextBelow(o.capacityBlocks()),
                     oram::OramOp::Read, nullptr);
        std::vector<verify::TraceEvent> t;
        for (const sdimm::BusEvent &e : o.busTrace())
            t.push_back(verify::TraceEvent{
                verify::TraceEventKind::ShortCmd,
                (static_cast<std::uint64_t>(e.type) << 8) | e.sdimm, 0});
        return clockedTrace(std::move(t));
    }
    if (spec.protocol == Protocol::IndepSplit) {
        sdimm::IndepSplitOram::Params p;
        p.perGroupTree.levels = 6;
        p.perGroupTree.stashCapacity = 200;
        p.groups = kUnitsPerShard;
        p.slicesPerGroup = 2;
        fault::FaultPlan plan = burstPlan(plan_seed);
        plan.correlatedFailures[0].atAccess = accesses / 4;
        fault::FaultInjector inj(plan);
        sdimm::IndepSplitOram o(p, plan_seed);
        o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);
        Rng rng(secret_seed);
        for (std::size_t i = 0; i < accesses; ++i)
            o.access(rng.nextBelow(o.capacityBlocks()),
                     oram::OramOp::Read, nullptr);
        std::vector<verify::TraceEvent> t;
        for (const sdimm::GroupBusEvent &e : o.busTrace())
            t.push_back(verify::TraceEvent{
                verify::TraceEventKind::ShortCmd,
                (static_cast<std::uint64_t>(e.type) << 8) | e.group, 0});
        return clockedTrace(std::move(t));
    }
    // Split: the visible channel is the leaf sequence.
    sdimm::SplitOram::Params p;
    p.tree.levels = 6;
    p.tree.stashCapacity = 200;
    p.slices = 2;
    fault::FaultInjector inj(transientPlan(plan_seed));
    sdimm::SplitOram o(p, plan_seed);
    o.setFaultInjector(&inj);
    Rng rng(secret_seed);
    for (std::size_t i = 0; i < accesses; ++i)
        o.access(rng.nextBelow(o.capacityBlocks()), oram::OramOp::Read,
                 nullptr);
    std::vector<verify::TraceEvent> t;
    for (const LeafId leaf : o.leafTrace())
        t.push_back(verify::TraceEvent{verify::TraceEventKind::Read,
                                       leaf, 0});
    return clockedTrace(std::move(t));
}

/** One sharded run under the chaos plans; returns the interleaved
 *  completion schedule.  The secret is each client's address/op
 *  stream. */
std::vector<verify::ScheduleEvent>
schedRun(const DesignSpec &spec, std::uint64_t campaign_seed,
         std::uint64_t secret_seed, std::uint64_t requests,
         unsigned threads, unsigned shards)
{
    verify::ScheduleRecorder rec;
    serve::ShardedSecureMemory mem(
        campaignOptions(spec, shards, campaign_seed));
    mem.setScheduleRecorder(&rec);
    const std::uint64_t cap = mem.capacityBlocks();
    const std::uint64_t per_thread = (requests + threads - 1) / threads;
    std::vector<std::thread> clients;
    for (unsigned t = 0; t < threads; ++t) {
        clients.emplace_back([&, t] {
            Rng rng(secret_seed * 8191 + t);
            for (std::uint64_t i = 0; i < per_thread; ++i) {
                const std::uint64_t block = rng.nextBelow(cap);
                const bool write = rng.nextBelow(2) == 1;
                try {
                    if (write)
                        mem.writeBlock(block,
                                       stampBlock(block, secret_seed));
                    else
                        mem.readBlock(block);
                } catch (const serve::ShardFailedError &) {
                    // Expected on the dead shard; keep the load up.
                }
            }
        });
    }
    for (std::thread &c : clients)
        c.join();
    mem.shutdown();
    return rec.events();
}

/** Locality-phased MI with chaos armed (the flat designs must still
 *  measure zero; Freecursive's PLB channel must still be caught). */
verify::LeakReport
measureChaosMi(const DesignSpec &spec, const verify::PlbLeakOptions &opts)
{
    if (spec.protocol == Protocol::PathOram)
        return verify::measurePlbLocalityLeak(verify::LeakDesign::PathOram,
                                              opts);
    if (spec.protocol == Protocol::Freecursive)
        return verify::measurePlbLocalityLeak(
            verify::LeakDesign::Freecursive, opts);
    if (spec.protocol == Protocol::Independent) {
        sdimm::IndependentOram::Params p;
        p.perSdimm.levels = 6;
        p.perSdimm.stashCapacity = 200;
        p.numSdimms = kUnitsPerShard;
        fault::FaultPlan plan =
            fault::FaultPlan::hardDeath(1, opts.requests / 4, opts.seed);
        plan.linkCorruptRate = 0.002;
        fault::FaultInjector inj(plan);
        sdimm::IndependentOram o(p, opts.seed);
        o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);
        return verify::measureLocalityLeakWith(
            spec.name, o.capacityBlocks(), opts,
            [&](Addr a) { o.access(a, oram::OramOp::Read, nullptr); },
            [&] { return o.busTrace().size(); });
    }
    if (spec.protocol == Protocol::IndepSplit) {
        sdimm::IndepSplitOram::Params p;
        p.perGroupTree.levels = 6;
        p.perGroupTree.stashCapacity = 200;
        p.groups = 2;
        p.slicesPerGroup = 2;
        fault::FaultPlan plan =
            fault::FaultPlan::hardDeath(1, opts.requests / 4, opts.seed);
        plan.linkCorruptRate = 0.002;
        fault::FaultInjector inj(plan);
        sdimm::IndepSplitOram o(p, opts.seed);
        o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);
        return verify::measureLocalityLeakWith(
            spec.name, o.capacityBlocks(), opts,
            [&](Addr a) { o.access(a, oram::OramOp::Read, nullptr); },
            [&] { return o.busTrace().size(); });
    }
    sdimm::SplitOram::Params p;
    p.tree.levels = 6;
    p.tree.stashCapacity = 200;
    p.slices = 2;
    fault::FaultInjector inj(transientPlan(opts.seed));
    sdimm::SplitOram o(p, opts.seed);
    o.setFaultInjector(&inj);
    return verify::measureLocalityLeakWith(
        spec.name, o.capacityBlocks(), opts,
        [&](Addr a) { o.access(a, oram::OramOp::Read, nullptr); },
        [&] { return o.leafTrace().size(); });
}

struct PostChaosResult
{
    bool deepPass = false;
    bool schedPass = false;
    verify::LeakReport mi;
    bool expectLeak = false;
    bool miOk = false;
    bool pass = false;
};

PostChaosResult
runPostChaos(const DesignSpec &spec, std::uint64_t seed,
             std::uint64_t requests, unsigned threads, unsigned shards,
             std::size_t mi_requests)
{
    PostChaosResult r;
    const std::size_t deep_accesses = 1500;
    const auto a =
        deepRun(spec, seed * 11 + 1, seed, deep_accesses);
    const auto b =
        deepRun(spec, seed * 13 + 7, seed, deep_accesses);
    r.deepPass = verify::deepCompareTraces(a, b).pass;

    const auto sa =
        schedRun(spec, seed, seed * 17 + 3, requests, threads, shards);
    const auto sb =
        schedRun(spec, seed, seed * 19 + 5, requests, threads, shards);
    r.schedPass = verify::compareSchedules(sa, sb).pass;

    verify::PlbLeakOptions mi_opts;
    mi_opts.requests = mi_requests;
    mi_opts.seed = seed;
    r.mi = measureChaosMi(spec, mi_opts);
    r.expectLeak = spec.expectLeak;
    r.miOk = r.mi.mi.leakDetected() == r.expectLeak;

    r.pass = r.deepPass && r.schedPass && r.miOk;
    return r;
}

/* ------------------------------------------------------------------ */
/* Phase B2: post-conviction indistinguishability (unit designs)       */
/* ------------------------------------------------------------------ */

/** One single-system run with a persistent corruptor armed mid-run:
 *  the unit is convicted and obliviously evacuated, and the trace of
 *  two secret-differing runs must still deep-compare. */
std::vector<verify::TraceEvent>
deepRunByz(const DesignSpec &spec, std::uint64_t secret_seed,
           std::uint64_t plan_seed, std::size_t accesses)
{
    const fault::FaultPlan plan =
        fault::FaultPlan::byzantineCorruptor(1, accesses / 4, plan_seed);
    fault::FaultInjector inj(plan);
    if (spec.protocol == Protocol::Independent) {
        sdimm::IndependentOram::Params p;
        p.perSdimm.levels = 6;
        p.perSdimm.stashCapacity = 200;
        p.numSdimms = kUnitsPerShard;
        sdimm::IndependentOram o(p, plan_seed);
        o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);
        Rng rng(secret_seed);
        for (std::size_t i = 0; i < accesses; ++i)
            o.access(rng.nextBelow(o.capacityBlocks()),
                     oram::OramOp::Read, nullptr);
        std::vector<verify::TraceEvent> t;
        for (const sdimm::BusEvent &e : o.busTrace())
            t.push_back(verify::TraceEvent{
                verify::TraceEventKind::ShortCmd,
                (static_cast<std::uint64_t>(e.type) << 8) | e.sdimm, 0});
        return clockedTrace(std::move(t));
    }
    sdimm::IndepSplitOram::Params p;
    p.perGroupTree.levels = 6;
    p.perGroupTree.stashCapacity = 200;
    p.groups = kUnitsPerShard;
    p.slicesPerGroup = 2;
    sdimm::IndepSplitOram o(p, plan_seed);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);
    Rng rng(secret_seed);
    for (std::size_t i = 0; i < accesses; ++i)
        o.access(rng.nextBelow(o.capacityBlocks()),
                 oram::OramOp::Read, nullptr);
    std::vector<verify::TraceEvent> t;
    for (const sdimm::GroupBusEvent &e : o.busTrace())
        t.push_back(verify::TraceEvent{
            verify::TraceEventKind::ShortCmd,
            (static_cast<std::uint64_t>(e.type) << 8) | e.group, 0});
    return clockedTrace(std::move(t));
}

/** Locality-phased MI with a conviction landing mid-measurement: the
 *  eviction storm is public (plan-determined), so MI must stay zero. */
verify::LeakReport
measureByzMi(const DesignSpec &spec, const verify::PlbLeakOptions &opts)
{
    const fault::FaultPlan plan = fault::FaultPlan::byzantineCorruptor(
        1, opts.requests / 4, opts.seed);
    fault::FaultInjector inj(plan);
    if (spec.protocol == Protocol::Independent) {
        sdimm::IndependentOram::Params p;
        p.perSdimm.levels = 6;
        p.perSdimm.stashCapacity = 200;
        p.numSdimms = kUnitsPerShard;
        sdimm::IndependentOram o(p, opts.seed);
        o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);
        return verify::measureLocalityLeakWith(
            spec.name, o.capacityBlocks(), opts,
            [&](Addr a) { o.access(a, oram::OramOp::Read, nullptr); },
            [&] { return o.busTrace().size(); });
    }
    sdimm::IndepSplitOram::Params p;
    p.perGroupTree.levels = 6;
    p.perGroupTree.stashCapacity = 200;
    p.groups = 2;
    p.slicesPerGroup = 2;
    sdimm::IndepSplitOram o(p, opts.seed);
    o.setFaultInjector(&inj, fault::DegradationPolicy::Degraded);
    return verify::measureLocalityLeakWith(
        spec.name, o.capacityBlocks(), opts,
        [&](Addr a) { o.access(a, oram::OramOp::Read, nullptr); },
        [&] { return o.busTrace().size(); });
}

struct PostByzResult
{
    bool deepPass = false;
    verify::LeakReport mi;
    bool miOk = false;
    bool pass = false;
};

PostByzResult
runPostByzantine(const DesignSpec &spec, std::uint64_t seed,
                 std::size_t mi_requests)
{
    PostByzResult r;
    const std::size_t deep_accesses = 1500;
    const auto a = deepRunByz(spec, seed * 11 + 1, seed, deep_accesses);
    const auto b = deepRunByz(spec, seed * 13 + 7, seed, deep_accesses);
    r.deepPass = verify::deepCompareTraces(a, b).pass;

    verify::PlbLeakOptions mi_opts;
    mi_opts.requests = mi_requests;
    mi_opts.seed = seed;
    r.mi = measureByzMi(spec, mi_opts);
    r.miOk = !r.mi.mi.leakDetected();
    r.pass = r.deepPass && r.miOk;
    return r;
}

/* ------------------------------------------------------------------ */
/* Phase C: KV application campaign                                    */
/* ------------------------------------------------------------------ */

/**
 * Chaos plans for the KV campaign: bursts, retirement, and (when
 * @p byzantine) a lying unit on the unit designs, recoverable
 * transients everywhere else -- but NO dead shard.  Every KV slot
 * spans all shards (blocks are consecutive, shard = block % N), so a
 * dead shard would fail every single op; the KV campaign instead
 * asserts that the store rides out everything the service survives.
 *
 * The byzantine plan is survival-only: burst/retire/transient trigger
 * at fixed access counts (public -- op counts match across secret
 * runs), but byzantine *detection* fires when a corrupted block is
 * actually read, i.e. at a secret-dependent time, so conviction and
 * evacuation traffic cannot be part of a schedule-comparison pair.
 */
std::vector<fault::FaultPlan>
kvPlans(const DesignSpec &spec, unsigned shards, std::uint64_t seed,
        bool byzantine)
{
    std::vector<fault::FaultPlan> plans;
    for (unsigned s = 0; s < shards; ++s) {
        const std::uint64_t shard_seed = seed * 1000003 + 100 + s;
        if (spec.unitDesign && s == 0 && byzantine)
            plans.push_back(
                fault::FaultPlan::byzantineCorruptor(1, 64, shard_seed));
        else if (spec.unitDesign && s == 1)
            plans.push_back(burstPlan(shard_seed));
        else if (spec.unitDesign && s == 2)
            plans.push_back(retirePlan(shard_seed));
        else
            plans.push_back(transientPlan(shard_seed));
    }
    return plans;
}

/** One KV run under the chaos plans; the secret is each client's
 *  zipfian op stream (keys, values, get/put mix). */
struct KvRun
{
    std::vector<verify::ScheduleEvent> schedule;
    std::vector<std::vector<verify::TraceEvent>> traces;
    bool rywOk = true;      ///< Every read saw the shadow-map value.
    bool integrityOk = false;
    bool healthOk = true;   ///< No shard failed (no dead plan armed).
    std::uint64_t ops = 0;
};

KvRun
kvChaosRun(const DesignSpec &spec, std::uint64_t plan_seed,
           std::uint64_t secret_seed, std::uint64_t ops_per_client,
           unsigned threads, unsigned shards, bool byzantine)
{
    KvRun r;
    app::ObliviousKVStore::Options opt;
    opt.serve.shard.protocol = spec.protocol;
    opt.serve.shard.numSdimms = spec.unitDesign ? kUnitsPerShard : 2;
    opt.serve.shard.stashCapacity = 200;
    opt.serve.shard.seed = plan_seed;
    opt.serve.shard.degradationPolicy =
        spec.unitDesign ? fault::DegradationPolicy::Degraded
                        : fault::DegradationPolicy::RetryThenStop;
    opt.serve.numShards = shards;
    opt.serve.queueCapacity = 128;
    opt.serve.maxBatch = 8;
    opt.capacityKeys = std::uint64_t(threads) * 24;
    opt.seed = plan_seed;
    opt.serve.shardFaultPlans =
        kvPlans(spec, shards, plan_seed, byzantine);
    const std::uint64_t record =
        6 + opt.maxKeyBytes + opt.maxValueBytes;
    const std::uint64_t bps = (record + blockBytes - 1) / blockBytes;
    const std::uint64_t slots =
        opt.capacityKeys + opt.capacityKeys / 4 + 4;
    opt.serve.shard.capacityBytes = slots * bps * blockBytes;
    app::ObliviousKVStore store(opt);

    // Per-shard bucket traces exist only for the tree protocols; the
    // SDIMM protocols are gated by the schedule comparison alone.
    const bool tree = spec.protocol == Protocol::PathOram ||
                      spec.protocol == Protocol::Freecursive;
    std::vector<std::unique_ptr<verify::ChannelObserver>> observers;
    if (tree) {
        for (unsigned s = 0; s < shards; ++s) {
            observers.push_back(
                std::make_unique<verify::ChannelObserver>());
            store.service().attachObserver(s, *observers.back());
        }
    }

    auto spec_for = [&](unsigned client) {
        app::KvWorkloadSpec ws;
        ws.kind = app::KvWorkloadKind::Zipfian;
        ws.tenant = "kv" + std::to_string(client);
        ws.keys = 24;
        ws.getFraction = 0.6;
        ws.missFraction = 0.1;
        ws.valueBytes = 96;
        return ws;
    };
    // Preload the resident population; seed each client's shadow map
    // with it so the measured phase can check reads from op one.
    std::vector<std::unordered_map<std::string, std::string>> shadows(
        threads);
    for (unsigned c = 0; c < threads; ++c) {
        app::KvWorkloadGenerator gen(spec_for(c), secret_seed * 31 + c);
        for (const app::KvOp &op : gen.preload()) {
            store.put(op.key, op.value);
            shadows[c][op.key] = op.value;
        }
    }
    store.drain();
    for (auto &obs : observers)
        obs->clear();
    verify::ScheduleRecorder rec;
    store.service().setScheduleRecorder(&rec);

    std::atomic<bool> ryw_failed{false};
    std::vector<std::thread> clients;
    for (unsigned c = 0; c < threads; ++c) {
        clients.emplace_back([&, c] {
            app::KvWorkloadGenerator gen(spec_for(c),
                                         secret_seed * 137 + c);
            auto &shadow = shadows[c];
            for (std::uint64_t i = 0; i < ops_per_client; ++i) {
                const app::KvOp op = gen.next();
                if (op.put) {
                    store.put(op.key, op.value);
                    shadow[op.key] = op.value;
                } else {
                    const auto got = store.get(op.key);
                    const auto want = shadow.find(op.key);
                    const bool have = want != shadow.end();
                    if (got.has_value() != have ||
                        (have && *got != want->second))
                        ryw_failed.store(true);
                }
            }
        });
    }
    for (std::thread &c : clients)
        c.join();
    store.drain();
    store.service().setScheduleRecorder(nullptr);
    r.schedule = rec.events();
    for (auto &obs : observers)
        r.traces.push_back(obs->events());
    r.ops = ops_per_client * threads;

    // Post-chaos read-your-writes sweep: after bursts, retirements,
    // and convictions, every surviving key still carries its last
    // written value (unrecorded -- shadow sizes differ per secret).
    for (unsigned c = 0; c < threads; ++c) {
        for (const auto &[key, value] : shadows[c]) {
            const auto got = store.get(key);
            if (!got.has_value() || *got != value)
                ryw_failed.store(true);
        }
    }
    r.rywOk = !ryw_failed.load();
    r.integrityOk = store.integrityOk();
    for (unsigned s = 0; s < shards; ++s)
        r.healthOk = r.healthOk && store.service().shardHealth(s) !=
                                       serve::ShardHealth::Failed;
    return r;
}

struct KvChaosOutcome
{
    std::uint64_t seed = 0;
    std::uint64_t ops = 0;
    bool rywOk = false;
    bool integrityOk = false;
    bool healthOk = false;
    bool schedPass = false;
    bool deepChecked = false;
    bool deepPass = true; ///< Vacuous for non-tree protocols.
    bool pass = false;
    std::string schedSummary;
};

KvChaosOutcome
runKvChaos(const DesignSpec &spec, std::uint64_t seed,
           std::uint64_t requests, unsigned threads, unsigned shards)
{
    KvChaosOutcome r;
    r.seed = seed;
    const std::uint64_t ops_per_client =
        std::max<std::uint64_t>(requests / (threads * 8), 48);

    // Indistinguishability pair: identical (public) count-triggered
    // plans, differing secrets.
    KvRun a = kvChaosRun(spec, seed, seed * 23 + 1, ops_per_client,
                         threads, shards, false);
    KvRun b = kvChaosRun(spec, seed, seed * 29 + 7, ops_per_client,
                         threads, shards, false);
    verify::ScheduleComparison sc =
        verify::compareSchedules(a.schedule, b.schedule);
    // The global-interleave ACF rides scheduler noise; a real leak
    // fails every re-randomized run.
    for (unsigned retry = 1; retry < 4 && !sc.pass; ++retry) {
        a = kvChaosRun(spec, seed + 1000 * retry,
                       seed * 23 + 1 + retry, ops_per_client, threads,
                       shards, false);
        b = kvChaosRun(spec, seed + 1000 * retry,
                       seed * 29 + 7 + retry, ops_per_client, threads,
                       shards, false);
        sc = verify::compareSchedules(a.schedule, b.schedule);
    }
    r.schedPass = sc.pass;
    r.schedSummary = sc.summary();
    r.deepChecked = !a.traces.empty();
    for (std::size_t s = 0;
         s < a.traces.size() && s < b.traces.size(); ++s)
        r.deepPass = r.deepPass &&
                     verify::deepCompareTraces(a.traces[s],
                                               b.traces[s]).pass;
    r.ops = a.ops + b.ops;
    r.rywOk = a.rywOk && b.rywOk;
    r.integrityOk = a.integrityOk && b.integrityOk;
    r.healthOk = a.healthOk && b.healthOk;

    // Survival run with the byzantine corruptor armed (unit designs):
    // read-your-writes, integrity, and health must also hold through
    // conviction and evacuation.
    if (spec.unitDesign) {
        const KvRun s = kvChaosRun(spec, seed, seed * 41 + 3,
                                   ops_per_client, threads, shards,
                                   true);
        r.ops += s.ops;
        r.rywOk = r.rywOk && s.rywOk;
        r.integrityOk = r.integrityOk && s.integrityOk;
        r.healthOk = r.healthOk && s.healthOk;
    }
    r.pass = r.rywOk && r.integrityOk && r.healthOk && r.schedPass &&
             r.deepPass;
    return r;
}

/* ------------------------------------------------------------------ */
/* Reporting                                                           */
/* ------------------------------------------------------------------ */

const char *
boolJson(bool v)
{
    return v ? "true" : "false";
}

std::string
campaignJson(const CampaignResult &c)
{
    std::string j = "{\"seed\": " + std::to_string(c.seed) +
                    ", \"shards\": [";
    for (std::size_t s = 0; s < c.shards.size(); ++s) {
        const ShardOutcome &o = c.shards[s];
        j += s ? ", " : "";
        j += "{\"shard\": " + std::to_string(o.shard) +
             ", \"health\": \"" +
             serve::shardHealthName(o.health) +
             "\", \"errors\": " + std::to_string(o.errors) +
             ", \"detected\": " + std::to_string(o.detected) +
             ", \"recovered\": " + std::to_string(o.recovered) +
             ", \"unrecovered\": " + std::to_string(o.unrecovered) +
             ", \"nested_evacuations\": " +
             std::to_string(o.nestedEvacuations) +
             ", \"retired_units\": " + std::to_string(o.retiredUnits) +
             ", \"zero_survivor_failstops\": " +
             std::to_string(o.zeroSurvivorFailStops) +
             ", \"ledger_ok\": " + boolJson(o.ledgerOk) + "}";
    }
    j += "], \"verified_blocks\": " + std::to_string(c.verifiedBlocks) +
         ", \"skipped_dead_blocks\": " +
         std::to_string(c.skippedDeadBlocks) +
         ", \"corrupt_blocks\": " + std::to_string(c.corruptBlocks) +
         ", \"data_ok\": " + boolJson(c.dataOk) +
         ", \"typed_errors_ok\": " + boolJson(c.typedErrorsOk) +
         ", \"health_ok\": " + boolJson(c.healthOk) +
         ", \"ledger_ok\": " + boolJson(c.ledgerOk) +
         ", \"nested_ok\": " + boolJson(c.nestedOk) +
         ", \"retired_ok\": " + boolJson(c.retiredOk) +
         ", \"zero_survivor_ok\": " + boolJson(c.zeroSurvivorOk) +
         ", \"pass\": " + boolJson(c.pass) + "}";
    return j;
}

std::string
byzJson(const ByzOutcome &o)
{
    return "{\"case\": \"" + o.name +
           "\", \"accesses\": " + std::to_string(o.accesses) +
           ", \"convictions\": " + std::to_string(o.convictions) +
           ", \"detected\": " + std::to_string(o.detected) +
           ", \"recovered\": " + std::to_string(o.recovered) +
           ", \"unrecovered\": " + std::to_string(o.unrecovered) +
           ", \"lost_writes\": " + std::to_string(o.lostWrites) +
           ", \"corrupt_blocks\": " + std::to_string(o.corruptBlocks) +
           ", \"convict_ok\": " + boolJson(o.convictOk) +
           ", \"ledger_ok\": " + boolJson(o.ledgerOk) +
           ", \"data_ok\": " + boolJson(o.dataOk) +
           ", \"pass\": " + boolJson(o.pass) + "}";
}

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--design path|freecursive|independent|split|"
        "indepsplit|all]\n"
        "          [--seed S] [--seeds N] [--requests N] [--threads T]\n"
        "          [--shards N] [--mi-requests N] [--out FILE] "
        "[--check]\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::string design = "all";
    std::string out_path = "CHAOS_verdict.json";
    std::uint64_t seed = 1;
    unsigned seeds = 1;
    std::uint64_t requests = 2048;
    unsigned threads = 8;
    unsigned shards = 4;
    std::size_t mi_requests = 3000;
    bool check = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (std::strcmp(arg, "--design") == 0 && has_value) {
            design = argv[++i];
        } else if (std::strcmp(arg, "--seed") == 0 && has_value) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(arg, "--seeds") == 0 && has_value) {
            seeds = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(arg, "--requests") == 0 && has_value) {
            requests = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(arg, "--threads") == 0 && has_value) {
            threads = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(arg, "--shards") == 0 && has_value) {
            shards = static_cast<unsigned>(
                std::strtoul(argv[++i], nullptr, 0));
        } else if (std::strcmp(arg, "--mi-requests") == 0 && has_value) {
            mi_requests = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(arg, "--out") == 0 && has_value) {
            out_path = argv[++i];
        } else if (std::strcmp(arg, "--check") == 0) {
            check = true;
        } else {
            usage(argv[0]);
            return 2;
        }
    }
    if (seeds == 0 || threads == 0 || shards < 2 || requests == 0) {
        usage(argv[0]);
        return 2;
    }

    bool all_pass = true;
    std::string designs_json;
    bool any = false;
    for (const DesignSpec &spec : kDesigns) {
        if (design != "all" && design != spec.cli)
            continue;
        any = true;

        std::string campaigns_json;
        bool design_pass = true;
        for (unsigned k = 0; k < seeds; ++k) {
            const CampaignResult c =
                runCampaign(spec, seed + k, requests, threads, shards);
            std::printf(
                "%-12s seed=%llu campaign %s  (data=%s typed=%s "
                "health=%s ledger=%s nested=%s retired=%s zsurv=%s)\n",
                spec.name,
                static_cast<unsigned long long>(c.seed),
                c.pass ? "PASS" : "FAIL", boolJson(c.dataOk),
                boolJson(c.typedErrorsOk), boolJson(c.healthOk),
                boolJson(c.ledgerOk), boolJson(c.nestedOk),
                boolJson(c.retiredOk), boolJson(c.zeroSurvivorOk));
            campaigns_json += campaigns_json.empty() ? "" : ",\n        ";
            campaigns_json += campaignJson(c);
            design_pass = design_pass && c.pass;
        }

        // Byzantine campaigns + post-conviction gates (unit designs:
        // only Independent/IndepSplit have convictable units).
        std::string byz_json;
        std::string post_byz_json;
        if (spec.unitDesign) {
            for (unsigned k = 0; k < seeds; ++k) {
                for (const ByzOutcome &o :
                     runByzantine(spec, seed + k)) {
                    std::printf(
                        "%-12s seed=%llu byz:%-18s %s  (convict=%s "
                        "ledger=%s data=%s)\n",
                        spec.name,
                        static_cast<unsigned long long>(seed + k),
                        o.name.c_str(), o.pass ? "PASS" : "FAIL",
                        boolJson(o.convictOk), boolJson(o.ledgerOk),
                        boolJson(o.dataOk));
                    byz_json += byz_json.empty() ? "" : ",\n        ";
                    byz_json += byzJson(o);
                    design_pass = design_pass && o.pass;
                }
            }
            const PostByzResult pb =
                runPostByzantine(spec, seed, mi_requests);
            std::printf(
                "%-12s post-byzantine %s  (deep=%s mi=%s; %s)\n",
                spec.name, pb.pass ? "PASS" : "FAIL",
                boolJson(pb.deepPass), boolJson(pb.miOk),
                pb.mi.mi.summary().c_str());
            design_pass = design_pass && pb.pass;
            post_byz_json =
                ",\n      \"post_byzantine\": {\"deep_pass\": " +
                std::string(boolJson(pb.deepPass)) +
                ", \"mi_ok\": " + boolJson(pb.miOk) +
                ", \"mi\": " + pb.mi.toJson() + "}";
        }

        const PostChaosResult pc = runPostChaos(
            spec, seed, requests, threads, shards, mi_requests);
        std::printf("%-12s post-chaos %s  (deep=%s sched=%s mi=%s; %s)\n",
                    spec.name, pc.pass ? "PASS" : "FAIL",
                    boolJson(pc.deepPass), boolJson(pc.schedPass),
                    boolJson(pc.miOk), pc.mi.mi.summary().c_str());
        design_pass = design_pass && pc.pass;

        const KvChaosOutcome kv =
            runKvChaos(spec, seed, requests, threads, shards);
        std::printf("%-12s kv-campaign %s  (ryw=%s integrity=%s "
                    "health=%s sched=%s deep=%s ops=%llu)\n",
                    spec.name, kv.pass ? "PASS" : "FAIL",
                    boolJson(kv.rywOk), boolJson(kv.integrityOk),
                    boolJson(kv.healthOk), boolJson(kv.schedPass),
                    kv.deepChecked ? boolJson(kv.deepPass) : "\"n/a\"",
                    static_cast<unsigned long long>(kv.ops));
        if (!kv.schedPass)
            std::printf("%-12s kv-campaign %s\n", spec.name,
                        kv.schedSummary.c_str());
        design_pass = design_pass && kv.pass;
        all_pass = all_pass && design_pass;

        std::string plans_json;
        for (const fault::FaultPlan &p :
             campaignPlans(spec, shards, seed)) {
            plans_json += plans_json.empty() ? "" : ",\n        ";
            plans_json += fault::faultPlanToJson(p);
        }

        designs_json += designs_json.empty() ? "\n    " : ",\n    ";
        designs_json +=
            "{\"design\": \"" + std::string(spec.name) +
            "\",\n      \"plans\": [" + plans_json +
            "],\n      \"campaigns\": [" + campaigns_json +
            "],\n      \"byzantine\": [" + byz_json + "]" +
            post_byz_json +
            ",\n      \"post_chaos\": {\"deep_pass\": " +
            boolJson(pc.deepPass) +
            ", \"sched_pass\": " + boolJson(pc.schedPass) +
            ", \"expect_leak\": " + boolJson(pc.expectLeak) +
            ", \"mi_ok\": " + boolJson(pc.miOk) +
            ", \"mi\": " + pc.mi.toJson() +
            "},\n      \"kv\": {\"ops\": " + std::to_string(kv.ops) +
            ", \"ryw_ok\": " + boolJson(kv.rywOk) +
            ", \"integrity_ok\": " + boolJson(kv.integrityOk) +
            ", \"health_ok\": " + boolJson(kv.healthOk) +
            ", \"sched_pass\": " + boolJson(kv.schedPass) +
            ", \"deep_checked\": " + boolJson(kv.deepChecked) +
            ", \"deep_pass\": " + boolJson(kv.deepPass) +
            ", \"pass\": " + boolJson(kv.pass) +
            "},\n      \"pass\": " + boolJson(design_pass) + "}";
    }
    if (!any) {
        usage(argv[0]);
        return 2;
    }

    const std::string json =
        "{\n  \"tool\": \"sdimm_chaos\",\n"
        "  \"schema\": \"secdimm-chaos-v3\",\n"
        "  \"seed\": " + std::to_string(seed) +
        ",\n  \"seeds\": " + std::to_string(seeds) +
        ",\n  \"requests\": " + std::to_string(requests) +
        ",\n  \"threads\": " + std::to_string(threads) +
        ",\n  \"shards\": " + std::to_string(shards) +
        ",\n  \"designs\": [" + designs_json +
        "\n  ],\n  \"pass\": " + boolJson(all_pass) + "\n}\n";

    std::ofstream f(out_path);
    if (f) {
        f << json;
        std::printf("verdict written to %s\n", out_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    }

    if (!check)
        return 0;
    if (!all_pass)
        std::fprintf(stderr, "CHECK FAILED: see %s\n", out_path.c_str());
    return all_pass ? 0 : 1;
}
