/**
 * @file
 * Leak-measurement CLI: runs the PLB locality mutual-information
 * experiment (verify/leak_meter.hh) over the functional designs and
 * the deliberately-leaky positive controls over a Path ORAM trace,
 * then emits one JSON report (stdout summary + file).
 *
 * Usage:
 *   sdimm_leakmeter [--design path|freecursive|independent|split|
 *                     indepsplit|all]
 *                   [--requests N] [--seed N] [--out FILE] [--check]
 *
 * `--check` turns the paper's expectations into an exit status (for
 * CI): Freecursive MUST measure a nonzero PLB locality leak (its 95%
 * CI excludes zero), every flat-PosMap design must NOT, and both
 * positive controls must be caught by the v2 statistics while
 * passing the v1 marginal checker.  Exit 0 = expectations hold,
 * 1 = violated, 2 = usage error.
 *
 * `--kv` switches to the application-layer experiment instead: the
 * oblivious KV store's hit/miss MI under alternating hit-heavy and
 * miss-heavy phases (src/app/kv_leak.hh).  The oblivious index must
 * measure ~0 bits (95% CI includes zero) and the LeakyBaseline index
 * -- the positive control -- must not; --check gates exactly that.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "app/kv_leak.hh"
#include "crypto/aes128.hh"
#include "oram/path_oram.hh"
#include "sdimm/indep_split_oram.hh"
#include "sdimm/independent_oram.hh"
#include "sdimm/split_oram.hh"
#include "util/rng.hh"
#include "verify/leak_meter.hh"
#include "verify/trace_checker.hh"

namespace
{

using namespace secdimm;

/** Locality-phased MI measurement for the SDIMM functional designs
 *  (the built-in harness covers PathOram / Freecursive). */
verify::LeakReport
measureSdimmDesign(const std::string &name,
                   const verify::PlbLeakOptions &opts)
{
    if (name == "Independent") {
        sdimm::IndependentOram::Params ip;
        ip.perSdimm.levels = 6;
        ip.perSdimm.stashCapacity = 200;
        ip.numSdimms = 2;
        sdimm::IndependentOram o(ip, opts.seed);
        return verify::measureLocalityLeakWith(
            name, o.capacityBlocks(), opts,
            [&](Addr a) { o.access(a, oram::OramOp::Read, nullptr); },
            [&] { return o.busTrace().size(); });
    }
    if (name == "Split") {
        sdimm::SplitOram::Params sp;
        sp.tree.levels = 6;
        sp.tree.stashCapacity = 200;
        sp.slices = 2;
        sdimm::SplitOram o(sp, opts.seed);
        return verify::measureLocalityLeakWith(
            name, o.capacityBlocks(), opts,
            [&](Addr a) { o.access(a, oram::OramOp::Read, nullptr); },
            [&] { return o.leafTrace().size(); });
    }
    if (name == "IndepSplit") {
        sdimm::IndepSplitOram::Params gp;
        gp.perGroupTree.levels = 6;
        gp.perGroupTree.stashCapacity = 200;
        gp.groups = 2;
        gp.slicesPerGroup = 2;
        sdimm::IndepSplitOram o(gp, opts.seed);
        return verify::measureLocalityLeakWith(
            name, o.capacityBlocks(), opts,
            [&](Addr a) { o.access(a, oram::OramOp::Read, nullptr); },
            [&] { return o.busTrace().size(); });
    }
    std::fprintf(stderr, "unknown SDIMM design %s\n", name.c_str());
    std::exit(2);
}

/** One positive-control result: v1 verdict vs v2 verdict. */
struct ControlResult
{
    std::string name;
    bool v1Passes = false; ///< Marginal checker is fooled (expected).
    bool v2Catches = false; ///< Second-order statistics fire (wanted).
};

/** A Path ORAM bucket trace for the control experiments. */
std::vector<verify::TraceEvent>
controlTrace(std::uint64_t seed, std::size_t accesses)
{
    oram::OramParams p;
    p.levels = 8;
    p.stashCapacity = 200;
    oram::PathOram o(p, crypto::makeKey(0xc0, seed),
                     crypto::makeKey(0xc1, seed * 3 + 1), seed);
    verify::ChannelObserver obs;
    obs.attach(o.store());
    Rng rng(seed * 7 + 5);
    for (std::size_t i = 0; i < accesses; ++i)
        o.access(rng.nextBelow(o.params().capacityBlocks()),
                 oram::OramOp::Read, nullptr);
    // Bucket traces carry no timestamps; give them a uniform clock so
    // the timing controls have a rhythm to distort.
    std::vector<verify::TraceEvent> t = obs.events();
    for (std::size_t i = 0; i < t.size(); ++i)
        t[i].at = 10 * i;
    return t;
}

std::vector<ControlResult>
runControls(std::uint64_t seed)
{
    const std::vector<verify::TraceEvent> base_a =
        controlTrace(seed, 512);
    const std::vector<verify::TraceEvent> base_b =
        controlTrace(seed + 100, 512);

    std::uint64_t addr_hi = 0;
    for (const verify::TraceEvent &e : base_a)
        addr_hi = std::max(addr_hi, e.addr);

    std::vector<ControlResult> out;
    {
        // Secret-keyed batch scheduler: A sorts its windows, B does
        // not.
        ControlResult c;
        c.name = "ordering";
        const auto leaky = verify::injectOrderingLeak(base_a, 8);
        c.v1Passes =
            verify::compareTraces(leaky, base_b).indistinguishable;
        c.v2Catches = !verify::deepCompareTraces(leaky, base_b).pass;
        out.push_back(c);
    }
    {
        // Secret-keyed slow path: A stalls after hot-half addresses.
        ControlResult c;
        c.name = "timing";
        const auto leaky =
            verify::injectTimingLeak(base_a, 0, addr_hi / 2, 40);
        c.v1Passes =
            verify::compareTraces(leaky, base_b).indistinguishable;
        c.v2Catches = !verify::deepCompareTraces(leaky, base_b).pass;
        out.push_back(c);
    }
    return out;
}

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--design path|freecursive|independent|"
                 "split|indepsplit|all] [--requests N] [--seed N] "
                 "[--out FILE] [--check] [--kv]\n",
                 argv0);
}

/** The KV hit/miss experiment: oblivious index vs leaky control. */
int
runKvExperiment(std::size_t requests, std::uint64_t seed,
                const std::string &out_path, bool check)
{
    app::KvLeakOptions opts;
    opts.requests = requests;
    opts.seed = seed;

    std::vector<verify::LeakReport> reports;
    std::vector<bool> expect_leak;
    for (const app::KvIndexMode mode :
         {app::KvIndexMode::Oblivious,
          app::KvIndexMode::LeakyBaseline}) {
        opts.index = mode;
        const verify::LeakReport r = app::measureKvHitMissLeak(opts);
        std::printf("%s\n", r.summary().c_str());
        reports.push_back(r);
        expect_leak.push_back(mode == app::KvIndexMode::LeakyBaseline);
    }

    std::string json = "{\n  \"tool\": \"sdimm_leakmeter\",\n"
                       "  \"schema\": \"secdimm-leak-v1\",\n"
                       "  \"experiment\": \"kv-hit-miss\",\n"
                       "  \"seed\": " +
                       std::to_string(seed) +
                       ",\n  \"requests\": " + std::to_string(requests) +
                       ",\n  \"designs\": [";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        json += i ? ",\n    " : "\n    ";
        json += reports[i].toJson();
    }
    json += "\n  ]\n}\n";

    std::ofstream f(out_path);
    if (f) {
        f << json;
        std::printf("report written to %s\n", out_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    }

    if (!check)
        return 0;
    int violations = 0;
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const bool detected = reports[i].mi.leakDetected();
        if (detected != expect_leak[i]) {
            std::fprintf(stderr,
                         "CHECK FAILED: %s leak_detected=%d expected=%d "
                         "(%s)\n",
                         reports[i].design.c_str(), detected ? 1 : 0,
                         expect_leak[i] ? 1 : 0,
                         reports[i].mi.summary().c_str());
            ++violations;
        }
    }
    return violations == 0 ? 0 : 1;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string design = "all";
    std::string out_path = "LEAK_measurements.json";
    std::size_t requests = 3000;
    std::uint64_t seed = 1;
    bool check = false;
    bool kv = false;

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (std::strcmp(arg, "--design") == 0 && has_value) {
            design = argv[++i];
        } else if (std::strcmp(arg, "--requests") == 0 && has_value) {
            requests = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(arg, "--seed") == 0 && has_value) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(arg, "--out") == 0 && has_value) {
            out_path = argv[++i];
        } else if (std::strcmp(arg, "--check") == 0) {
            check = true;
        } else if (std::strcmp(arg, "--kv") == 0) {
            kv = true;
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    if (kv) {
        if (out_path == "LEAK_measurements.json")
            out_path = "LEAK_kv_measurements.json";
        return runKvExperiment(requests, seed, out_path, check);
    }

    verify::PlbLeakOptions opts;
    opts.requests = requests;
    opts.seed = seed;

    struct DesignSpec
    {
        const char *cli;
        const char *name;
        bool expectLeak;
    };
    const std::vector<DesignSpec> specs = {
        {"path", "PathOram", false},
        {"freecursive", "Freecursive", true},
        {"independent", "Independent", false},
        {"split", "Split", false},
        {"indepsplit", "IndepSplit", false},
    };

    std::vector<verify::LeakReport> reports;
    std::vector<bool> expect_leak;
    for (const DesignSpec &spec : specs) {
        if (design != "all" && design != spec.cli)
            continue;
        verify::LeakReport r;
        if (std::strcmp(spec.name, "PathOram") == 0) {
            r = verify::measurePlbLocalityLeak(
                verify::LeakDesign::PathOram, opts);
        } else if (std::strcmp(spec.name, "Freecursive") == 0) {
            r = verify::measurePlbLocalityLeak(
                verify::LeakDesign::Freecursive, opts);
        } else {
            r = measureSdimmDesign(spec.name, opts);
        }
        std::printf("%s\n", r.summary().c_str());
        reports.push_back(r);
        expect_leak.push_back(spec.expectLeak);
    }
    if (reports.empty()) {
        usage(argv[0]);
        return 2;
    }

    const std::vector<ControlResult> controls = runControls(seed);
    for (const ControlResult &c : controls) {
        std::printf("control %-9s v1(marginal)=%s v2(second-order)=%s\n",
                    c.name.c_str(), c.v1Passes ? "PASS" : "FAIL",
                    c.v2Catches ? "CAUGHT" : "missed");
    }

    std::string json = "{\n  \"tool\": \"sdimm_leakmeter\",\n"
                       "  \"schema\": \"secdimm-leak-v1\",\n"
                       "  \"seed\": " +
                       std::to_string(seed) +
                       ",\n  \"requests\": " + std::to_string(requests) +
                       ",\n  \"designs\": [";
    for (std::size_t i = 0; i < reports.size(); ++i) {
        json += i ? ",\n    " : "\n    ";
        json += reports[i].toJson();
    }
    json += "\n  ],\n  \"controls\": [";
    for (std::size_t i = 0; i < controls.size(); ++i) {
        json += i ? ",\n    " : "\n    ";
        json += std::string("{\"name\": \"") + controls[i].name +
                "\", \"marginal_checker_passes\": " +
                (controls[i].v1Passes ? "true" : "false") +
                ", \"second_order_catches\": " +
                (controls[i].v2Catches ? "true" : "false") + "}";
    }
    json += "\n  ]\n}\n";

    std::ofstream f(out_path);
    if (f) {
        f << json;
        std::printf("report written to %s\n", out_path.c_str());
    } else {
        std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    }

    if (!check)
        return 0;

    int violations = 0;
    for (std::size_t i = 0; i < reports.size(); ++i) {
        const bool detected = reports[i].mi.leakDetected();
        if (detected != expect_leak[i]) {
            std::fprintf(stderr,
                         "CHECK FAILED: %s leak_detected=%d expected=%d "
                         "(%s)\n",
                         reports[i].design.c_str(), detected ? 1 : 0,
                         expect_leak[i] ? 1 : 0,
                         reports[i].mi.summary().c_str());
            ++violations;
        }
    }
    for (const ControlResult &c : controls) {
        if (!c.v1Passes || !c.v2Catches) {
            std::fprintf(stderr,
                         "CHECK FAILED: control %s v1Passes=%d "
                         "v2Catches=%d (want 1/1)\n",
                         c.name.c_str(), c.v1Passes, c.v2Catches);
            ++violations;
        }
    }
    return violations == 0 ? 0 : 1;
}
