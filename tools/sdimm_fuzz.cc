/**
 * @file
 * Command-line driver for the deterministic fuzz campaigns in
 * src/verify/fuzz.hh.  Exit status 0 when every selected campaign is
 * clean, 1 otherwise; the first failing case is printed so it can be
 * reproduced from (seed, iters) alone.
 *
 * Usage:
 *   sdimm_fuzz [--seed N] [--iters N]
 *              [--target codec|frames|link|messages|faults|permanent|all]
 *              [--faults] [--permanent-faults]
 *
 * `--faults` (or `--target faults`) selects the fault-recovery soak:
 * each iteration is a whole randomized fault-injection campaign over
 * one secure protocol instance, so its default iteration count is
 * scaled down (one "faults" iteration costs ~10^3 parser iterations).
 *
 * `--permanent-faults` (or `--target permanent`) selects the
 * permanent-fault soak: each iteration kills one SDIMM or group
 * (stuck-at from boot, or hard death at a seeded access index drawn
 * from the seed) in a rotating secure design and checks watchdog
 * detection, quarantine, oblivious evacuation, and data survival.
 */

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "verify/fuzz.hh"

namespace
{

using secdimm::verify::FuzzResult;

struct Campaign
{
    const char *name;
    FuzzResult (*run)(std::uint64_t seed, std::uint64_t iters);
    /** Iterations per requested iteration (cost normalization). */
    std::uint64_t itersDivisor;
};

constexpr Campaign kCampaigns[] = {
    {"codec", secdimm::verify::fuzzCommandCodec, 1},
    {"frames", secdimm::verify::fuzzCommandFrames, 1},
    {"link", secdimm::verify::fuzzLinkSession, 1},
    {"messages", secdimm::verify::fuzzMessageCodecs, 1},
    {"faults", secdimm::verify::fuzzFaultRecovery, 1000},
    {"permanent", secdimm::verify::fuzzPermanentFaults, 1000},
};

void
usage(const char *argv0)
{
    std::fprintf(
        stderr,
        "usage: %s [--seed N] [--iters N] [--faults] "
        "[--permanent-faults] "
        "[--target codec|frames|link|messages|faults|permanent|all]\n",
        argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 1;
    std::uint64_t iters = 100000;
    std::string target = "all";

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (std::strcmp(arg, "--seed") == 0 && has_value) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(arg, "--iters") == 0 && has_value) {
            iters = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(arg, "--target") == 0 && has_value) {
            target = argv[++i];
        } else if (std::strcmp(arg, "--faults") == 0) {
            target = "faults";
        } else if (std::strcmp(arg, "--permanent-faults") == 0) {
            target = "permanent";
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    bool matched = false;
    bool all_ok = true;
    for (const Campaign &c : kCampaigns) {
        if (target == "all") {
            // The soak campaigns only run when asked for: their cost
            // model differs from the parser campaigns'.
            if (std::strcmp(c.name, "faults") == 0 ||
                std::strcmp(c.name, "permanent") == 0) {
                continue;
            }
        } else if (target != c.name) {
            continue;
        }
        matched = true;
        const std::uint64_t n =
            std::max<std::uint64_t>(1, iters / c.itersDivisor);
        const FuzzResult r = c.run(seed, n);
        std::printf("%-8s seed=%llu iters=%llu failures=%llu %s\n",
                    c.name, static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(r.iterations),
                    static_cast<unsigned long long>(r.failures),
                    r.ok() ? "OK" : "FAIL");
        if (!r.ok()) {
            std::printf("  first failure: %s\n",
                        r.firstFailure.c_str());
            all_ok = false;
        }
    }
    if (!matched) {
        usage(argv[0]);
        return 2;
    }
    return all_ok ? 0 : 1;
}
