/**
 * @file
 * Command-line driver for the deterministic fuzz campaigns in
 * src/verify/fuzz.hh.  Exit status 0 when every selected campaign is
 * clean, 1 otherwise; the first failing case is printed so it can be
 * reproduced from (seed, iters) alone.
 *
 * Usage:
 *   sdimm_fuzz [--seed N] [--iters N]
 *              [--target codec|frames|link|messages|all]
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "verify/fuzz.hh"

namespace
{

using secdimm::verify::FuzzResult;

struct Campaign
{
    const char *name;
    FuzzResult (*run)(std::uint64_t seed, std::uint64_t iters);
};

constexpr Campaign kCampaigns[] = {
    {"codec", secdimm::verify::fuzzCommandCodec},
    {"frames", secdimm::verify::fuzzCommandFrames},
    {"link", secdimm::verify::fuzzLinkSession},
    {"messages", secdimm::verify::fuzzMessageCodecs},
};

void
usage(const char *argv0)
{
    std::fprintf(stderr,
                 "usage: %s [--seed N] [--iters N] "
                 "[--target codec|frames|link|messages|all]\n",
                 argv0);
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 1;
    std::uint64_t iters = 100000;
    std::string target = "all";

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        const bool has_value = i + 1 < argc;
        if (std::strcmp(arg, "--seed") == 0 && has_value) {
            seed = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(arg, "--iters") == 0 && has_value) {
            iters = std::strtoull(argv[++i], nullptr, 0);
        } else if (std::strcmp(arg, "--target") == 0 && has_value) {
            target = argv[++i];
        } else {
            usage(argv[0]);
            return 2;
        }
    }

    bool matched = false;
    bool all_ok = true;
    for (const Campaign &c : kCampaigns) {
        if (target != "all" && target != c.name)
            continue;
        matched = true;
        const FuzzResult r = c.run(seed, iters);
        std::printf("%-8s seed=%llu iters=%llu failures=%llu %s\n",
                    c.name, static_cast<unsigned long long>(seed),
                    static_cast<unsigned long long>(r.iterations),
                    static_cast<unsigned long long>(r.failures),
                    r.ok() ? "OK" : "FAIL");
        if (!r.ok()) {
            std::printf("  first failure: %s\n",
                        r.firstFailure.c_str());
            all_ok = false;
        }
    }
    if (!matched) {
        usage(argv[0]);
        return 2;
    }
    return all_ok ? 0 : 1;
}
